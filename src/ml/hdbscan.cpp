#include "ml/hdbscan.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <numeric>

#include "common/error.hpp"
#include "ml/linalg.hpp"

namespace aks::ml {

namespace {

/// An edge of the mutual-reachability MST.
struct MstEdge {
  std::size_t a = 0;
  std::size_t b = 0;
  double weight = 0.0;
};

/// A node of the single-linkage dendrogram. Leaves are points 0..n-1;
/// internal nodes are n..2n-2, each merging two children at `distance`.
struct LinkageNode {
  std::size_t left = 0;
  std::size_t right = 0;
  double distance = 0.0;
  std::size_t size = 0;
};

/// Edge of the condensed tree: `child` is either a point (< n) or a
/// condensed cluster id (>= n-offset encoding handled by caller).
struct CondensedEdge {
  std::size_t parent_cluster = 0;
  bool child_is_cluster = false;
  std::size_t child = 0;       // point index or cluster id
  double lambda = 0.0;         // 1 / distance at which the child departed
  std::size_t child_size = 1;  // points under the child
};

std::vector<double> core_distances(const common::Matrix& dist,
                                   std::size_t min_samples) {
  const std::size_t n = dist.rows();
  std::vector<double> core(n);
  std::vector<double> row(n);
  for (std::size_t i = 0; i < n; ++i) {
    const auto r = dist.row(i);
    row.assign(r.begin(), r.end());
    // The point itself (distance 0) counts as its own first neighbour,
    // matching the reference implementation's kth-neighbour convention.
    std::nth_element(row.begin(),
                     row.begin() + static_cast<std::ptrdiff_t>(min_samples),
                     row.end());
    core[i] = row[min_samples];
  }
  return core;
}

std::vector<MstEdge> prim_mst(const common::Matrix& dist,
                              const std::vector<double>& core) {
  const std::size_t n = dist.rows();
  std::vector<bool> in_tree(n, false);
  std::vector<double> best(n, std::numeric_limits<double>::infinity());
  std::vector<std::size_t> from(n, 0);
  std::vector<MstEdge> edges;
  edges.reserve(n - 1);

  std::size_t current = 0;
  in_tree[0] = true;
  for (std::size_t added = 1; added < n; ++added) {
    for (std::size_t j = 0; j < n; ++j) {
      if (in_tree[j]) continue;
      const double mr =
          std::max({dist(current, j), core[current], core[j]});
      if (mr < best[j]) {
        best[j] = mr;
        from[j] = current;
      }
    }
    std::size_t next = 0;
    double next_weight = std::numeric_limits<double>::infinity();
    for (std::size_t j = 0; j < n; ++j) {
      if (!in_tree[j] && best[j] < next_weight) {
        next_weight = best[j];
        next = j;
      }
    }
    edges.push_back({from[next], next, next_weight});
    in_tree[next] = true;
    current = next;
  }
  return edges;
}

std::vector<LinkageNode> single_linkage(std::vector<MstEdge> edges,
                                        std::size_t n) {
  std::sort(edges.begin(), edges.end(),
            [](const MstEdge& a, const MstEdge& b) { return a.weight < b.weight; });
  // Union-find where each set points at its current dendrogram node.
  std::vector<std::size_t> parent(2 * n - 1);
  std::iota(parent.begin(), parent.end(), std::size_t{0});
  std::vector<std::size_t> set_node(2 * n - 1);
  std::iota(set_node.begin(), set_node.end(), std::size_t{0});
  auto find = [&](std::size_t x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  };

  std::vector<LinkageNode> nodes(2 * n - 1);
  for (std::size_t i = 0; i < n; ++i) nodes[i].size = 1;
  std::size_t next_node = n;
  for (const auto& edge : edges) {
    const std::size_t ra = find(edge.a);
    const std::size_t rb = find(edge.b);
    const std::size_t na = set_node[ra];
    const std::size_t nb = set_node[rb];
    nodes[next_node].left = na;
    nodes[next_node].right = nb;
    nodes[next_node].distance = edge.weight;
    nodes[next_node].size = nodes[na].size + nodes[nb].size;
    parent[ra] = rb;
    set_node[rb] = next_node;
    ++next_node;
  }
  return nodes;
}

/// Collects the leaf points of a dendrogram subtree.
void collect_points(const std::vector<LinkageNode>& nodes, std::size_t node,
                    std::size_t n, std::vector<std::size_t>& out) {
  if (node < n) {
    out.push_back(node);
    return;
  }
  collect_points(nodes, nodes[node].left, n, out);
  collect_points(nodes, nodes[node].right, n, out);
}

}  // namespace

Hdbscan::Hdbscan(HdbscanOptions options) : options_(options) {
  AKS_CHECK(options_.min_cluster_size >= 2,
            "min_cluster_size must be at least 2");
  AKS_CHECK(options_.min_samples >= 0, "min_samples must be non-negative");
}

void Hdbscan::fit(const common::Matrix& x) {
  const std::size_t n = x.rows();
  AKS_CHECK(n >= 2, "HDBSCAN needs at least 2 points, got " << n);
  const auto mcs = static_cast<std::size_t>(options_.min_cluster_size);
  const std::size_t min_samples =
      options_.min_samples > 0 ? static_cast<std::size_t>(options_.min_samples)
                               : mcs;
  AKS_CHECK(min_samples < n, "min_samples " << min_samples
            << " must be smaller than the number of points " << n);

  // Steps 1-4: distances -> core distances -> MST -> dendrogram.
  const common::Matrix dist = pairwise_distances(x);
  const auto core = core_distances(dist, min_samples);
  const auto mst = prim_mst(dist, core);
  const auto dendrogram = single_linkage(mst, n);
  const std::size_t root = 2 * n - 2;

  // Step 5: condense. Clusters get sequential ids; id 0 is the root
  // cluster containing everything.
  std::vector<CondensedEdge> condensed;
  std::vector<double> birth_lambda{0.0};  // per cluster id
  std::vector<std::size_t> cluster_parent{0};
  std::size_t next_cluster = 1;

  // Iterative DFS over (dendrogram node, owning condensed cluster).
  std::vector<std::pair<std::size_t, std::size_t>> stack{{root, 0}};
  std::vector<std::size_t> scratch;
  while (!stack.empty()) {
    const auto [node, cluster] = stack.back();
    stack.pop_back();
    if (node < n) {
      // Singleton reaching its own leaf: departs at infinite density; use
      // the lambda of its final merge (handled by caller edges); points
      // reaching here individually get lambda of their merge distance.
      condensed.push_back({cluster, false, node,
                           std::numeric_limits<double>::infinity(), 1});
      continue;
    }
    const auto& dn = dendrogram[node];
    const double lambda =
        dn.distance > 0.0 ? 1.0 / dn.distance
                          : std::numeric_limits<double>::infinity();
    const std::size_t left_size =
        dendrogram[dn.left].size;
    const std::size_t right_size = dendrogram[dn.right].size;

    const bool left_big = left_size >= mcs;
    const bool right_big = right_size >= mcs;
    if (left_big && right_big) {
      // A true split: two new condensed clusters are born.
      for (const std::size_t child : {dn.left, dn.right}) {
        const std::size_t id = next_cluster++;
        birth_lambda.push_back(lambda);
        cluster_parent.push_back(cluster);
        condensed.push_back(
            {cluster, true, id, lambda, dendrogram[child].size});
        stack.emplace_back(child, id);
      }
    } else if (left_big || right_big) {
      // The small side's points fall out of `cluster` at this lambda.
      const std::size_t big = left_big ? dn.left : dn.right;
      const std::size_t small = left_big ? dn.right : dn.left;
      scratch.clear();
      collect_points(dendrogram, small, n, scratch);
      for (const std::size_t p : scratch) {
        condensed.push_back({cluster, false, p, lambda, 1});
      }
      stack.emplace_back(big, cluster);
    } else {
      // Both sides are too small: every point departs here.
      scratch.clear();
      collect_points(dendrogram, node, n, scratch);
      for (const std::size_t p : scratch) {
        condensed.push_back({cluster, false, p, lambda, 1});
      }
    }
  }

  // Step 6: stabilities and Excess-of-Mass selection.
  std::vector<double> stability(next_cluster, 0.0);
  for (const auto& edge : condensed) {
    double lambda = edge.lambda;
    if (!std::isfinite(lambda)) {
      // Points that never depart contribute at the largest finite lambda
      // seen in their cluster; approximate with birth lambda (their
      // contribution is then zero), the conservative choice.
      lambda = birth_lambda[edge.parent_cluster];
    }
    stability[edge.parent_cluster] +=
        static_cast<double>(edge.child_size) *
        (lambda - birth_lambda[edge.parent_cluster]);
  }

  // Children lists over the cluster tree.
  std::vector<std::vector<std::size_t>> children(next_cluster);
  for (std::size_t c = 1; c < next_cluster; ++c) {
    children[cluster_parent[c]].push_back(c);
  }

  // Process leaves-to-root (ids increase downward, so reverse order works).
  std::vector<bool> selected(next_cluster, false);
  std::vector<double> subtree_stability(next_cluster, 0.0);
  for (std::size_t c = next_cluster; c-- > 1;) {
    double child_sum = 0.0;
    for (const std::size_t ch : children[c]) child_sum += subtree_stability[ch];
    if (children[c].empty() || stability[c] >= child_sum) {
      selected[c] = true;
      subtree_stability[c] = stability[c];
    } else {
      subtree_stability[c] = child_sum;
    }
  }
  // Keep only the outermost selected clusters: BFS from the root and
  // deselect everything below a selected ancestor.
  std::vector<std::pair<std::size_t, bool>> frontier{{0, false}};
  for (std::size_t i = 0; i < frontier.size(); ++i) {
    const auto [c, under_selected] = frontier[i];
    if (under_selected) selected[c] = false;
    for (const std::size_t ch : children[c]) {
      frontier.emplace_back(ch, under_selected || selected[c]);
    }
  }
  if (options_.allow_single_cluster) {
    double child_sum = 0.0;
    for (const std::size_t ch : children[0]) child_sum += subtree_stability[ch];
    if (stability[0] > child_sum) {
      std::fill(selected.begin(), selected.end(), false);
      selected[0] = true;
    }
  } else {
    selected[0] = false;
  }

  // Step 7: labels. A point belongs to the innermost selected ancestor of
  // the condensed cluster it departed from.
  std::vector<int> cluster_label(next_cluster, -1);
  int next_label = 0;
  stabilities_.clear();
  for (std::size_t c = 0; c < next_cluster; ++c) {
    if (selected[c]) {
      cluster_label[c] = next_label++;
      stabilities_.push_back(stability[c]);
    }
  }
  auto resolve_label = [&](std::size_t cluster) {
    std::size_t cur = cluster;
    while (true) {
      if (selected[cur]) return cluster_label[cur];
      if (cur == 0) return -1;
      cur = cluster_parent[cur];
    }
  };

  labels_.assign(n, -1);
  probabilities_.assign(n, 0.0);
  std::vector<double> point_lambda(n, 0.0);
  std::vector<double> max_lambda(next_cluster, 0.0);
  for (const auto& edge : condensed) {
    if (edge.child_is_cluster) continue;
    const int label = resolve_label(edge.parent_cluster);
    labels_[edge.child] = label;
    if (std::isfinite(edge.lambda)) {
      point_lambda[edge.child] = edge.lambda;
    }
  }
  for (const auto& edge : condensed) {
    if (edge.child_is_cluster || labels_[edge.child] < 0) continue;
    if (std::isfinite(edge.lambda)) {
      auto& m = max_lambda[edge.parent_cluster];
      m = std::max(m, edge.lambda);
    }
  }
  for (const auto& edge : condensed) {
    if (edge.child_is_cluster || labels_[edge.child] < 0) continue;
    const double m = max_lambda[edge.parent_cluster];
    probabilities_[edge.child] =
        m > 0.0 ? std::min(1.0, point_lambda[edge.child] / m) : 1.0;
  }

  num_clusters_ = static_cast<std::size_t>(next_label);
  fitted_ = true;
}

std::vector<std::size_t> Hdbscan::medoid_rows(const common::Matrix& x) const {
  AKS_CHECK(fitted_, "HDBSCAN used before fit");
  AKS_CHECK(x.rows() == labels_.size(), "medoid_rows expects the training matrix");
  std::vector<std::size_t> medoids(num_clusters_, 0);
  std::vector<double> best(num_clusters_,
                           std::numeric_limits<double>::infinity());
  for (std::size_t i = 0; i < x.rows(); ++i) {
    if (labels_[i] < 0) continue;
    const auto c = static_cast<std::size_t>(labels_[i]);
    double total = 0.0;
    for (std::size_t j = 0; j < x.rows(); ++j) {
      if (labels_[j] == labels_[i]) total += distance(x.row(i), x.row(j));
    }
    if (total < best[c]) {
      best[c] = total;
      medoids[c] = i;
    }
  }
  return medoids;
}

}  // namespace aks::ml
