// Clustering quality metrics.
//
// The paper picks its cluster-count range from PCA variance (Figure 3);
// silhouette analysis is the standard alternative, and
// bench/ablation_cluster_count compares the two ways of choosing k.
#pragma once

#include <vector>

#include "common/matrix.hpp"

namespace aks::ml {

/// Mean silhouette coefficient over all points (Rousseeuw 1987):
/// s(i) = (b(i) - a(i)) / max(a(i), b(i)) with a = mean intra-cluster
/// distance and b = mean distance to the nearest other cluster. Requires at
/// least 2 clusters; singleton clusters contribute s = 0 (scikit-learn's
/// convention).
[[nodiscard]] double silhouette_score(const common::Matrix& x,
                                      const std::vector<std::size_t>& labels);

/// Davies-Bouldin index (lower is better): mean over clusters of the worst
/// (scatter_i + scatter_j) / centroid_distance(i, j) ratio.
[[nodiscard]] double davies_bouldin_index(
    const common::Matrix& x, const std::vector<std::size_t>& labels);

}  // namespace aks::ml
