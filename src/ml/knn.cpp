#include "ml/knn.hpp"

#include <algorithm>
#include <numeric>

#include "common/error.hpp"
#include "ml/linalg.hpp"

namespace aks::ml {

KnnClassifier::KnnClassifier(int k) : k_(k) {
  AKS_CHECK(k_ >= 1, "k must be at least 1, got " << k_);
}

void KnnClassifier::fit(const common::Matrix& x, const std::vector<int>& y,
                        int num_classes) {
  AKS_CHECK(x.rows() == y.size(), "X/y size mismatch");
  AKS_CHECK(x.rows() >= static_cast<std::size_t>(k_),
            "need at least k=" << k_ << " training points, got " << x.rows());
  int max_label = 0;
  for (const int label : y) {
    AKS_CHECK(label >= 0, "negative class label");
    max_label = std::max(max_label, label);
  }
  num_classes_ = num_classes > 0 ? num_classes : max_label + 1;
  train_ = x;
  labels_ = y;
}

int KnnClassifier::predict_row(std::span<const double> row) const {
  AKS_CHECK(fitted(), "kNN used before fit");
  AKS_CHECK(row.size() == train_.cols(), "feature count changed");
  const std::size_t n = train_.rows();
  std::vector<double> dists(n);
  for (std::size_t i = 0; i < n; ++i) {
    dists[i] = squared_distance(train_.row(i), row);
  }
  std::vector<std::size_t> idx(n);
  std::iota(idx.begin(), idx.end(), std::size_t{0});
  const auto kth = static_cast<std::ptrdiff_t>(k_);
  std::partial_sort(idx.begin(), idx.begin() + kth, idx.end(),
                    [&](std::size_t a, std::size_t b) {
                      // Tie-break on index for determinism.
                      return dists[a] < dists[b] ||
                             (dists[a] == dists[b] && a < b);
                    });
  std::vector<int> votes(static_cast<std::size_t>(num_classes_), 0);
  for (int i = 0; i < k_; ++i) {
    ++votes[static_cast<std::size_t>(labels_[idx[static_cast<std::size_t>(i)]])];
  }
  return static_cast<int>(std::distance(
      votes.begin(), std::max_element(votes.begin(), votes.end())));
}

std::vector<int> KnnClassifier::predict(const common::Matrix& x) const {
  std::vector<int> out(x.rows());
  for (std::size_t r = 0; r < x.rows(); ++r) out[r] = predict_row(x.row(r));
  return out;
}

}  // namespace aks::ml
