#include "ml/decision_tree.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <queue>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace aks::ml {

namespace {

/// Sufficient statistics for a sample set. For regression `sum` is the
/// per-output value sum and `sumsq` the total sum of squares; for
/// classification `sum` holds class counts and `sumsq` is unused. Both
/// impurities share the form  A - sum_j s_j^2 / n  (SSE resp. n * Gini).
struct Stats {
  std::vector<double> sum;
  double sumsq = 0.0;
  std::size_t n = 0;

  void init(std::size_t dim) {
    sum.assign(dim, 0.0);
    sumsq = 0.0;
    n = 0;
  }
};

struct Candidate {
  bool found = false;
  int feature = -1;
  double threshold = 0.0;
  double gain = 0.0;
  /// Partition of the node's samples induced by the split.
  std::vector<std::size_t> left_idx;
  std::vector<std::size_t> right_idx;
};

class Grower {
 public:
  Grower(const common::Matrix& x, const TreeOptions& options,
         bool classification, std::size_t out_dim,
         const common::Matrix* y_reg, const std::vector<int>* y_cls)
      : x_(x),
        options_(options),
        classification_(classification),
        out_dim_(out_dim),
        y_reg_(y_reg),
        y_cls_(y_cls),
        rng_(options.seed) {}

  std::vector<TreeNode> grow() {
    std::vector<std::size_t> all(x_.rows());
    std::iota(all.begin(), all.end(), std::size_t{0});

    std::vector<TreeNode> nodes;
    nodes.push_back(make_node(all));

    // Open leaves ordered by achievable impurity improvement.
    struct Open {
      int node = 0;
      int depth = 0;
      Candidate split;
      std::vector<std::size_t> indices;
    };
    auto cmp = [](const Open& a, const Open& b) {
      return a.split.gain < b.split.gain;
    };
    std::priority_queue<Open, std::vector<Open>, decltype(cmp)> queue(cmp);

    auto try_enqueue = [&](int node, int depth,
                           std::vector<std::size_t> indices) {
      if (options_.max_depth > 0 && depth >= options_.max_depth) return;
      if (indices.size() <
          static_cast<std::size_t>(options_.min_samples_split)) {
        return;
      }
      Candidate split = best_split(indices, nodes[static_cast<std::size_t>(node)]);
      if (!split.found || split.gain <= 1e-12) return;
      queue.push(Open{node, depth, std::move(split), std::move(indices)});
    };

    try_enqueue(0, 0, std::move(all));
    std::size_t leaves = 1;
    const std::size_t max_leaves =
        options_.max_leaf_nodes > 0
            ? static_cast<std::size_t>(options_.max_leaf_nodes)
            : std::numeric_limits<std::size_t>::max();

    while (!queue.empty() && leaves < max_leaves) {
      Open open = queue.top();
      queue.pop();
      const int left_id = static_cast<int>(nodes.size());
      const int right_id = left_id + 1;
      // push_back may reallocate, so finish all appends before taking a
      // reference to the parent node.
      nodes.push_back(make_node(open.split.left_idx));
      nodes.push_back(make_node(open.split.right_idx));
      auto& node = nodes[static_cast<std::size_t>(open.node)];
      node.feature = open.split.feature;
      node.threshold = open.split.threshold;
      node.left = left_id;
      node.right = right_id;
      ++leaves;  // one leaf became two

      try_enqueue(nodes[static_cast<std::size_t>(open.node)].left,
                  open.depth + 1, std::move(open.split.left_idx));
      try_enqueue(nodes[static_cast<std::size_t>(open.node)].right,
                  open.depth + 1, std::move(open.split.right_idx));
    }
    return nodes;
  }

 private:
  void accumulate(Stats& stats, std::size_t sample) const {
    if (classification_) {
      stats.sum[static_cast<std::size_t>((*y_cls_)[sample])] += 1.0;
    } else {
      const auto row = y_reg_->row(sample);
      for (std::size_t d = 0; d < out_dim_; ++d) {
        stats.sum[d] += row[d];
        stats.sumsq += row[d] * row[d];
      }
    }
    ++stats.n;
  }

  [[nodiscard]] double impurity(const Stats& stats) const {
    if (stats.n == 0) return 0.0;
    double sq = 0.0;
    for (const double s : stats.sum) sq += s * s;
    const double base =
        classification_ ? static_cast<double>(stats.n) : stats.sumsq;
    return std::max(0.0, base - sq / static_cast<double>(stats.n));
  }

  [[nodiscard]] TreeNode make_node(const std::vector<std::size_t>& indices) const {
    Stats stats;
    stats.init(out_dim_);
    for (const std::size_t i : indices) accumulate(stats, i);
    TreeNode node;
    node.n_samples = stats.n;
    node.impurity = impurity(stats);
    node.value = stats.sum;
    if (!classification_) {
      for (auto& v : node.value) v /= static_cast<double>(stats.n);
    }
    return node;
  }

  [[nodiscard]] Candidate best_split(const std::vector<std::size_t>& indices,
                                     const TreeNode& node) {
    const std::size_t num_features = x_.cols();
    std::vector<std::size_t> features(num_features);
    std::iota(features.begin(), features.end(), std::size_t{0});
    if (options_.max_features > 0 &&
        static_cast<std::size_t>(options_.max_features) < num_features) {
      rng_.shuffle(features);
      features.resize(static_cast<std::size_t>(options_.max_features));
    }

    Candidate best;
    std::vector<std::pair<double, std::size_t>> sorted;
    Stats left;
    const auto min_leaf = static_cast<std::size_t>(options_.min_samples_leaf);

    for (const std::size_t f : features) {
      sorted.clear();
      sorted.reserve(indices.size());
      for (const std::size_t i : indices) sorted.emplace_back(x_(i, f), i);
      std::sort(sorted.begin(), sorted.end());
      if (sorted.front().first == sorted.back().first) continue;

      left.init(out_dim_);
      Stats right;
      right.init(out_dim_);
      for (const std::size_t i : indices) accumulate(right, i);

      for (std::size_t pos = 0; pos + 1 < sorted.size(); ++pos) {
        const std::size_t sample = sorted[pos].second;
        // Move the sample from right to left.
        if (classification_) {
          const auto cls = static_cast<std::size_t>((*y_cls_)[sample]);
          left.sum[cls] += 1.0;
          right.sum[cls] -= 1.0;
        } else {
          const auto row = y_reg_->row(sample);
          for (std::size_t d = 0; d < out_dim_; ++d) {
            left.sum[d] += row[d];
            right.sum[d] -= row[d];
            left.sumsq += row[d] * row[d];
            right.sumsq -= row[d] * row[d];
          }
        }
        ++left.n;
        --right.n;

        if (sorted[pos].first == sorted[pos + 1].first) continue;
        if (left.n < min_leaf || right.n < min_leaf) continue;
        const double gain = node.impurity - impurity(left) - impurity(right);
        if (gain > best.gain) {
          best.found = true;
          best.feature = static_cast<int>(f);
          best.threshold = 0.5 * (sorted[pos].first + sorted[pos + 1].first);
          best.gain = gain;
        }
      }
    }

    if (best.found) {
      for (const std::size_t i : indices) {
        if (x_(i, static_cast<std::size_t>(best.feature)) <= best.threshold) {
          best.left_idx.push_back(i);
        } else {
          best.right_idx.push_back(i);
        }
      }
    }
    return best;
  }

  const common::Matrix& x_;
  TreeOptions options_;
  bool classification_;
  std::size_t out_dim_;
  const common::Matrix* y_reg_;
  const std::vector<int>* y_cls_;
  common::Rng rng_;
};

const TreeNode& descend(const std::vector<TreeNode>& nodes,
                        std::span<const double> row) {
  std::size_t cur = 0;
  while (!nodes[cur].is_leaf()) {
    const auto f = static_cast<std::size_t>(nodes[cur].feature);
    cur = static_cast<std::size_t>(row[f] <= nodes[cur].threshold
                                       ? nodes[cur].left
                                       : nodes[cur].right);
  }
  return nodes[cur];
}

std::size_t count_leaves(const std::vector<TreeNode>& nodes) {
  std::size_t leaves = 0;
  for (const auto& n : nodes) leaves += n.is_leaf() ? 1u : 0u;
  return leaves;
}

void validate_options(const TreeOptions& options) {
  AKS_CHECK(options.max_leaf_nodes >= 0, "max_leaf_nodes must be >= 0");
  AKS_CHECK(options.max_leaf_nodes != 1, "a tree needs at least 2 leaves");
  AKS_CHECK(options.min_samples_split >= 2, "min_samples_split must be >= 2");
  AKS_CHECK(options.min_samples_leaf >= 1, "min_samples_leaf must be >= 1");
}

}  // namespace

std::vector<double> feature_importances(const std::vector<TreeNode>& nodes,
                                        std::size_t num_features) {
  AKS_CHECK(!nodes.empty(), "feature_importances of an empty tree");
  std::vector<double> importances(num_features, 0.0);
  for (const auto& node : nodes) {
    if (node.is_leaf()) continue;
    const auto& left = nodes[static_cast<std::size_t>(node.left)];
    const auto& right = nodes[static_cast<std::size_t>(node.right)];
    const double decrease = node.impurity - left.impurity - right.impurity;
    AKS_CHECK(static_cast<std::size_t>(node.feature) < num_features,
              "split feature out of range");
    importances[static_cast<std::size_t>(node.feature)] +=
        std::max(0.0, decrease);
  }
  double total = 0.0;
  for (const double v : importances) total += v;
  if (total > 0.0) {
    for (auto& v : importances) v /= total;
  }
  return importances;
}

DecisionTreeRegressor::DecisionTreeRegressor(TreeOptions options)
    : options_(options) {
  validate_options(options_);
}

void DecisionTreeRegressor::fit(const common::Matrix& x,
                                const common::Matrix& y) {
  AKS_CHECK(x.rows() == y.rows(), "X has " << x.rows() << " rows, y has "
            << y.rows());
  AKS_CHECK(x.rows() >= 1, "empty training set");
  num_features_ = x.cols();
  Grower grower(x, options_, /*classification=*/false, y.cols(), &y, nullptr);
  nodes_ = grower.grow();
}

std::size_t DecisionTreeRegressor::num_leaves() const {
  return count_leaves(nodes_);
}

const std::vector<double>& DecisionTreeRegressor::predict_row(
    std::span<const double> row) const {
  AKS_CHECK(fitted(), "tree used before fit");
  AKS_CHECK(row.size() == num_features_, "feature count changed");
  return descend(nodes_, row).value;
}

common::Matrix DecisionTreeRegressor::predict(const common::Matrix& x) const {
  AKS_CHECK(fitted(), "tree used before fit");
  common::Matrix out(x.rows(), nodes_.front().value.size());
  for (std::size_t r = 0; r < x.rows(); ++r) {
    const auto& value = predict_row(x.row(r));
    std::copy(value.begin(), value.end(), out.row(r).begin());
  }
  return out;
}

std::size_t DecisionTreeRegressor::leaf_index_row(
    std::span<const double> row) const {
  AKS_CHECK(fitted(), "tree used before fit");
  AKS_CHECK(row.size() == num_features_, "feature count changed");
  std::size_t cur = 0;
  while (!nodes_[cur].is_leaf()) {
    const auto f = static_cast<std::size_t>(nodes_[cur].feature);
    cur = static_cast<std::size_t>(row[f] <= nodes_[cur].threshold
                                       ? nodes_[cur].left
                                       : nodes_[cur].right);
  }
  return cur;
}

std::vector<std::vector<double>> DecisionTreeRegressor::leaf_values() const {
  AKS_CHECK(fitted(), "tree used before fit");
  std::vector<std::vector<double>> values;
  for (const auto& node : nodes_) {
    if (node.is_leaf()) values.push_back(node.value);
  }
  return values;
}

DecisionTreeClassifier::DecisionTreeClassifier(TreeOptions options)
    : options_(options) {
  validate_options(options_);
}

DecisionTreeClassifier DecisionTreeClassifier::from_nodes(
    std::vector<TreeNode> nodes, int num_classes, std::size_t num_features) {
  AKS_CHECK(!nodes.empty(), "from_nodes: empty node list");
  AKS_CHECK(num_classes >= 1, "from_nodes: need at least one class");
  AKS_CHECK(num_features >= 1, "from_nodes: need at least one feature");
  for (const auto& node : nodes) {
    if (node.is_leaf()) {
      AKS_CHECK(node.value.size() == static_cast<std::size_t>(num_classes),
                "from_nodes: leaf value has " << node.value.size()
                << " entries, expected " << num_classes);
    } else {
      AKS_CHECK(node.feature >= 0 &&
                    static_cast<std::size_t>(node.feature) < num_features,
                "from_nodes: split feature out of range");
      AKS_CHECK(node.left > 0 && node.right > 0 &&
                    static_cast<std::size_t>(node.left) < nodes.size() &&
                    static_cast<std::size_t>(node.right) < nodes.size(),
                "from_nodes: child index out of range");
    }
  }
  DecisionTreeClassifier tree;
  tree.nodes_ = std::move(nodes);
  tree.num_classes_ = num_classes;
  tree.num_features_ = num_features;
  return tree;
}

void DecisionTreeClassifier::fit(const common::Matrix& x,
                                 const std::vector<int>& y, int num_classes) {
  AKS_CHECK(x.rows() == y.size(), "X has " << x.rows() << " rows, y has "
            << y.size());
  AKS_CHECK(!y.empty(), "empty training set");
  int max_label = 0;
  for (const int label : y) {
    AKS_CHECK(label >= 0, "negative class label " << label);
    max_label = std::max(max_label, label);
  }
  num_classes_ = num_classes > 0 ? num_classes : max_label + 1;
  AKS_CHECK(max_label < num_classes_, "label " << max_label
            << " exceeds num_classes " << num_classes_);
  num_features_ = x.cols();
  Grower grower(x, options_, /*classification=*/true,
                static_cast<std::size_t>(num_classes_), nullptr, &y);
  nodes_ = grower.grow();
}

std::size_t DecisionTreeClassifier::num_leaves() const {
  return count_leaves(nodes_);
}

int DecisionTreeClassifier::predict_row(std::span<const double> row) const {
  AKS_CHECK(fitted(), "tree used before fit");
  AKS_CHECK(row.size() == num_features_, "feature count changed");
  const auto& counts = descend(nodes_, row).value;
  return static_cast<int>(std::distance(
      counts.begin(), std::max_element(counts.begin(), counts.end())));
}

std::vector<int> DecisionTreeClassifier::predict(const common::Matrix& x) const {
  std::vector<int> out(x.rows());
  for (std::size_t r = 0; r < x.rows(); ++r) out[r] = predict_row(x.row(r));
  return out;
}

std::vector<double> DecisionTreeClassifier::predict_proba_row(
    std::span<const double> row) const {
  AKS_CHECK(fitted(), "tree used before fit");
  auto counts = descend(nodes_, row).value;
  double total = 0.0;
  for (const double c : counts) total += c;
  if (total > 0.0) {
    for (auto& c : counts) c /= total;
  }
  return counts;
}

}  // namespace aks::ml
