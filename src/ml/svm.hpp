// Support vector machine classifier (C-SVC) trained with SMO.
//
// Linear and RBF kernels, one-vs-rest multi-class — the paper's LinearSVM
// and RadialSVM selector baselines. Training uses Platt's sequential
// minimal optimisation with the full kernel matrix cached (training sets
// here are tiny).
//
// Note: like scikit-learn circa the paper, no internal feature scaling is
// performed. Feeding raw matrix dimensions to the RBF kernel makes gamma
// degenerate and collapses predictions to the majority class — exactly the
// ~55% RadialSVM rows of Table I. bench/ablation_feature_scaling shows the
// standardised alternative.
#pragma once

#include <cstdint>
#include <vector>

#include "common/matrix.hpp"

namespace aks::ml {

enum class SvmKernel { kLinear, kRbf };

struct SvmOptions {
  SvmKernel kernel = SvmKernel::kLinear;
  /// Soft-margin penalty.
  double c = 1.0;
  /// RBF width; 0 selects scikit-learn's "scale": 1 / (d * Var(X)).
  double gamma = 0.0;
  /// KKT violation tolerance.
  double tolerance = 1e-3;
  /// Passes over the data without any update before declaring convergence.
  int max_stale_passes = 5;
  /// Hard cap on optimisation sweeps.
  int max_iterations = 2000;
  std::uint64_t seed = 0;
};

/// Binary C-SVC; labels are -1 / +1.
class BinarySvm {
 public:
  explicit BinarySvm(SvmOptions options = {});

  void fit(const common::Matrix& x, const std::vector<int>& y);

  [[nodiscard]] bool fitted() const { return !alpha_.empty(); }
  /// Signed decision value; positive means class +1.
  [[nodiscard]] double decision(std::span<const double> row) const;
  [[nodiscard]] int predict_row(std::span<const double> row) const;
  [[nodiscard]] std::size_t num_support_vectors() const;
  [[nodiscard]] double effective_gamma() const { return gamma_; }

  /// Explicit primal weights (populated for the linear kernel).
  [[nodiscard]] const std::vector<double>& weights() const { return weights_; }

 private:
  [[nodiscard]] double kernel(std::span<const double> a,
                              std::span<const double> b) const;
  /// Dual coordinate descent (liblinear algorithm 3) for the linear kernel;
  /// trains the explicit primal weight vector.
  void fit_linear(const common::Matrix& x, const std::vector<int>& y);
  /// SMO for kernelised (RBF) training.
  void fit_smo(const common::Matrix& x, const std::vector<int>& y);

  SvmOptions options_;
  common::Matrix support_;        // training rows (all rows kept; alpha==0 skipped)
  std::vector<double> alpha_;
  std::vector<int> labels_;
  std::vector<double> weights_;   // linear kernel only
  double bias_ = 0.0;
  double gamma_ = 0.0;
};

/// One-vs-rest multi-class wrapper.
class SvmClassifier {
 public:
  explicit SvmClassifier(SvmOptions options = {});

  void fit(const common::Matrix& x, const std::vector<int>& y,
           int num_classes = 0);

  [[nodiscard]] bool fitted() const { return !machines_.empty(); }
  [[nodiscard]] int num_classes() const { return num_classes_; }

  [[nodiscard]] int predict_row(std::span<const double> row) const;
  [[nodiscard]] std::vector<int> predict(const common::Matrix& x) const;
  /// Per-class decision values.
  [[nodiscard]] std::vector<double> decision_row(
      std::span<const double> row) const;

 private:
  SvmOptions options_;
  std::vector<BinarySvm> machines_;
  int num_classes_ = 0;
  /// Classes absent from training data keep a -inf decision.
  std::vector<bool> class_present_;
};

}  // namespace aks::ml
