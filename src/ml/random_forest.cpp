#include "ml/random_forest.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace aks::ml {

RandomForestClassifier::RandomForestClassifier(ForestOptions options)
    : options_(options) {
  AKS_CHECK(options_.n_trees > 0, "n_trees must be positive");
  AKS_CHECK(options_.bootstrap_fraction > 0.0 &&
                options_.bootstrap_fraction <= 1.0,
            "bootstrap_fraction must be in (0,1]");
}

void RandomForestClassifier::fit(const common::Matrix& x,
                                 const std::vector<int>& y, int num_classes) {
  AKS_CHECK(x.rows() == y.size(), "X/y size mismatch");
  AKS_CHECK(!y.empty(), "empty training set");
  int max_label = 0;
  for (const int label : y) max_label = std::max(max_label, label);
  num_classes_ = num_classes > 0 ? num_classes : max_label + 1;

  common::Rng rng(options_.seed);
  const auto sample_count = std::max<std::size_t>(
      1, static_cast<std::size_t>(std::round(
             options_.bootstrap_fraction * static_cast<double>(x.rows()))));

  trees_.clear();
  trees_.reserve(static_cast<std::size_t>(options_.n_trees));
  for (int t = 0; t < options_.n_trees; ++t) {
    // Bootstrap sample (with replacement).
    std::vector<std::size_t> rows(sample_count);
    for (auto& r : rows) r = rng.uniform_index(x.rows());
    common::Matrix xb = x.select_rows(rows);
    std::vector<int> yb(sample_count);
    for (std::size_t i = 0; i < sample_count; ++i) yb[i] = y[rows[i]];

    TreeOptions topts = options_.tree;
    if (topts.max_features == 0) {
      topts.max_features = std::max(
          1, static_cast<int>(std::sqrt(static_cast<double>(x.cols()))));
    }
    topts.seed = rng.fork_seed();
    DecisionTreeClassifier tree(topts);
    tree.fit(xb, yb, num_classes_);
    trees_.push_back(std::move(tree));
  }
}

std::vector<double> RandomForestClassifier::predict_proba_row(
    std::span<const double> row) const {
  AKS_CHECK(fitted(), "forest used before fit");
  std::vector<double> votes(static_cast<std::size_t>(num_classes_), 0.0);
  for (const auto& tree : trees_) {
    const auto proba = tree.predict_proba_row(row);
    for (std::size_t c = 0; c < votes.size(); ++c) votes[c] += proba[c];
  }
  for (auto& v : votes) v /= static_cast<double>(trees_.size());
  return votes;
}

int RandomForestClassifier::predict_row(std::span<const double> row) const {
  const auto votes = predict_proba_row(row);
  return static_cast<int>(std::distance(
      votes.begin(), std::max_element(votes.begin(), votes.end())));
}

std::vector<int> RandomForestClassifier::predict(const common::Matrix& x) const {
  std::vector<int> out(x.rows());
  for (std::size_t r = 0; r < x.rows(); ++r) out[r] = predict_row(x.row(r));
  return out;
}

}  // namespace aks::ml
