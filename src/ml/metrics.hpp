// Classification metrics.
#pragma once

#include <vector>

#include "common/matrix.hpp"

namespace aks::ml {

/// Fraction of matching labels; requires equal, non-zero lengths.
[[nodiscard]] double accuracy(const std::vector<int>& truth,
                              const std::vector<int>& predicted);

/// Confusion matrix C where C(i, j) counts truth i predicted as j.
[[nodiscard]] common::Matrix confusion_matrix(const std::vector<int>& truth,
                                              const std::vector<int>& predicted,
                                              int num_classes);

/// Index of the most frequent label (majority class).
[[nodiscard]] int majority_class(const std::vector<int>& labels);

}  // namespace aks::ml
