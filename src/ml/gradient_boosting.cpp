#include "ml/gradient_boosting.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace aks::ml {

namespace {

/// Row-wise softmax of an n x k score matrix, in place.
void softmax_rows(common::Matrix& scores) {
  for (std::size_t r = 0; r < scores.rows(); ++r) {
    auto row = scores.row(r);
    const double max_score = *std::max_element(row.begin(), row.end());
    double total = 0.0;
    for (auto& v : row) {
      v = std::exp(v - max_score);
      total += v;
    }
    for (auto& v : row) v /= total;
  }
}

}  // namespace

GradientBoostedClassifier::GradientBoostedClassifier(GbmOptions options)
    : options_(options) {
  AKS_CHECK(options_.n_rounds > 0, "n_rounds must be positive");
  AKS_CHECK(options_.learning_rate > 0.0 && options_.learning_rate <= 1.0,
            "learning_rate must be in (0,1]");
  AKS_CHECK(options_.max_depth >= 1, "max_depth must be at least 1");
}

void GradientBoostedClassifier::fit(const common::Matrix& x,
                                    const std::vector<int>& y,
                                    int num_classes) {
  const std::size_t n = x.rows();
  AKS_CHECK(n == y.size(), "X/y size mismatch");
  AKS_CHECK(n >= 2, "need at least 2 samples");
  int max_label = 0;
  for (const int label : y) {
    AKS_CHECK(label >= 0, "negative class label");
    max_label = std::max(max_label, label);
  }
  num_classes_ = num_classes > 0 ? num_classes : max_label + 1;
  const auto k = static_cast<std::size_t>(num_classes_);

  // Base score: log prior per class (with Laplace smoothing so absent
  // classes stay finite).
  std::vector<double> counts(k, 1.0);
  for (const int label : y) counts[static_cast<std::size_t>(label)] += 1.0;
  base_score_.assign(k, 0.0);
  for (std::size_t c = 0; c < k; ++c) {
    base_score_[c] = std::log(counts[c] / static_cast<double>(n + k));
  }

  common::Matrix scores(n, k);
  for (std::size_t r = 0; r < n; ++r) {
    std::copy(base_score_.begin(), base_score_.end(), scores.row(r).begin());
  }

  rounds_.clear();
  common::Matrix residual(n, 1);
  const double leaf_factor =
      static_cast<double>(num_classes_ - 1) / std::max(1, num_classes_);

  for (int round = 0; round < options_.n_rounds; ++round) {
    common::Matrix proba = scores;
    softmax_rows(proba);

    Round this_round;
    this_round.per_class.resize(k);
    for (std::size_t cls = 0; cls < k; ++cls) {
      // Pseudo-residuals of the softmax cross-entropy.
      for (std::size_t r = 0; r < n; ++r) {
        const double target = y[r] == static_cast<int>(cls) ? 1.0 : 0.0;
        residual(r, 0) = target - proba(r, cls);
      }
      TreeOptions topts;
      topts.max_depth = options_.max_depth;
      topts.min_samples_leaf = options_.min_samples_leaf;
      auto& entry = this_round.per_class[cls];
      entry.tree = DecisionTreeRegressor(topts);
      entry.tree.fit(x, residual);

      // Friedman's Newton step per leaf: gamma = (K-1)/K * sum r /
      // sum |r| (1 - |r|), computed over the samples in each leaf.
      const auto& nodes = entry.tree.nodes();
      std::vector<double> numerator(nodes.size(), 0.0);
      std::vector<double> denominator(nodes.size(), 0.0);
      for (std::size_t r = 0; r < n; ++r) {
        const std::size_t leaf = entry.tree.leaf_index_row(x.row(r));
        const double res = residual(r, 0);
        numerator[leaf] += res;
        denominator[leaf] += std::abs(res) * (1.0 - std::abs(res));
      }
      entry.leaf_gamma.assign(nodes.size(), 0.0);
      for (std::size_t node = 0; node < nodes.size(); ++node) {
        if (!nodes[node].is_leaf()) continue;
        entry.leaf_gamma[node] =
            denominator[node] > 1e-12
                ? leaf_factor * numerator[node] / denominator[node]
                : 0.0;
      }

      // Update the additive scores.
      for (std::size_t r = 0; r < n; ++r) {
        const std::size_t leaf = entry.tree.leaf_index_row(x.row(r));
        scores(r, cls) += options_.learning_rate * entry.leaf_gamma[leaf];
      }
    }
    rounds_.push_back(std::move(this_round));
  }
}

std::vector<double> GradientBoostedClassifier::decision_row(
    std::span<const double> row) const {
  AKS_CHECK(fitted(), "GBM used before fit");
  std::vector<double> scores = base_score_;
  for (const auto& round : rounds_) {
    for (std::size_t cls = 0; cls < scores.size(); ++cls) {
      const auto& entry = round.per_class[cls];
      const std::size_t leaf = entry.tree.leaf_index_row(row);
      scores[cls] += options_.learning_rate * entry.leaf_gamma[leaf];
    }
  }
  return scores;
}

int GradientBoostedClassifier::predict_row(std::span<const double> row) const {
  const auto scores = decision_row(row);
  return static_cast<int>(std::distance(
      scores.begin(), std::max_element(scores.begin(), scores.end())));
}

std::vector<int> GradientBoostedClassifier::predict(
    const common::Matrix& x) const {
  std::vector<int> out(x.rows());
  for (std::size_t r = 0; r < x.rows(); ++r) out[r] = predict_row(x.row(r));
  return out;
}

}  // namespace aks::ml
