#include "ml/cluster_metrics.hpp"

#include <algorithm>
#include <limits>

#include "common/error.hpp"
#include "ml/linalg.hpp"

namespace aks::ml {

namespace {

std::size_t validate_labels(const common::Matrix& x,
                            const std::vector<std::size_t>& labels) {
  AKS_CHECK(x.rows() == labels.size(), "labels/rows size mismatch");
  AKS_CHECK(x.rows() >= 2, "need at least 2 points");
  std::size_t num_clusters = 0;
  for (const auto label : labels) {
    num_clusters = std::max(num_clusters, label + 1);
  }
  AKS_CHECK(num_clusters >= 2, "need at least 2 clusters");
  return num_clusters;
}

}  // namespace

double silhouette_score(const common::Matrix& x,
                        const std::vector<std::size_t>& labels) {
  const std::size_t k = validate_labels(x, labels);
  const std::size_t n = x.rows();
  const common::Matrix dist = pairwise_distances(x);

  std::vector<std::size_t> sizes(k, 0);
  for (const auto label : labels) ++sizes[label];

  double total = 0.0;
  std::vector<double> sums(k);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t own = labels[i];
    if (sizes[own] <= 1) continue;  // singleton: s = 0 by convention
    std::fill(sums.begin(), sums.end(), 0.0);
    for (std::size_t j = 0; j < n; ++j) {
      if (j != i) sums[labels[j]] += dist(i, j);
    }
    const double a = sums[own] / static_cast<double>(sizes[own] - 1);
    double b = std::numeric_limits<double>::infinity();
    for (std::size_t c = 0; c < k; ++c) {
      if (c == own || sizes[c] == 0) continue;
      b = std::min(b, sums[c] / static_cast<double>(sizes[c]));
    }
    total += (b - a) / std::max(a, b);
  }
  return total / static_cast<double>(n);
}

double davies_bouldin_index(const common::Matrix& x,
                            const std::vector<std::size_t>& labels) {
  const std::size_t k = validate_labels(x, labels);
  const std::size_t n = x.rows();
  const std::size_t d = x.cols();

  // Centroids and mean scatter per cluster.
  common::Matrix centroids(k, d, 0.0);
  std::vector<std::size_t> sizes(k, 0);
  for (std::size_t i = 0; i < n; ++i) {
    ++sizes[labels[i]];
    const auto row = x.row(i);
    auto c = centroids.row(labels[i]);
    for (std::size_t f = 0; f < d; ++f) c[f] += row[f];
  }
  for (std::size_t c = 0; c < k; ++c) {
    AKS_CHECK(sizes[c] > 0, "empty cluster " << c);
    auto row = centroids.row(c);
    for (std::size_t f = 0; f < d; ++f) {
      row[f] /= static_cast<double>(sizes[c]);
    }
  }
  std::vector<double> scatter(k, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    scatter[labels[i]] += distance(x.row(i), centroids.row(labels[i]));
  }
  for (std::size_t c = 0; c < k; ++c) {
    scatter[c] /= static_cast<double>(sizes[c]);
  }

  double total = 0.0;
  for (std::size_t i = 0; i < k; ++i) {
    double worst = 0.0;
    for (std::size_t j = 0; j < k; ++j) {
      if (i == j) continue;
      const double separation = distance(centroids.row(i), centroids.row(j));
      AKS_CHECK(separation > 0.0, "coincident centroids " << i << "," << j);
      worst = std::max(worst, (scatter[i] + scatter[j]) / separation);
    }
    total += worst;
  }
  return total / static_cast<double>(k);
}

}  // namespace aks::ml
