// Agglomerative (bottom-up) hierarchical clustering.
//
// An extension clustering method beyond the paper's k-means/HDBSCAN pair:
// unlike k-means it is deterministic with no seeding, and unlike HDBSCAN it
// honours an exact cluster-count budget, which makes it a natural extra
// pruner (select::AgglomerativePruner).
//
// Naive O(n^3) implementation with Lance-Williams distance updates — the
// datasets here have at most a few hundred rows.
#pragma once

#include <vector>

#include "common/matrix.hpp"

namespace aks::ml {

enum class Linkage { kSingle, kComplete, kAverage };

struct AgglomerativeOptions {
  int n_clusters = 8;
  Linkage linkage = Linkage::kAverage;
};

class Agglomerative {
 public:
  explicit Agglomerative(AgglomerativeOptions options = {});

  void fit(const common::Matrix& x);

  [[nodiscard]] bool fitted() const { return !labels_.empty(); }
  /// Cluster label (0..n_clusters-1) per training row.
  [[nodiscard]] const std::vector<std::size_t>& labels() const {
    return labels_;
  }
  [[nodiscard]] std::size_t num_clusters() const { return num_clusters_; }

  /// Medoid training row of each cluster.
  [[nodiscard]] std::vector<std::size_t> medoid_rows(
      const common::Matrix& x) const;

  /// Merge distances in order (the dendrogram heights); useful to pick a
  /// cluster count by the largest gap.
  [[nodiscard]] const std::vector<double>& merge_distances() const {
    return merge_distances_;
  }

 private:
  AgglomerativeOptions options_;
  std::vector<std::size_t> labels_;
  std::vector<double> merge_distances_;
  std::size_t num_clusters_ = 0;
};

}  // namespace aks::ml
