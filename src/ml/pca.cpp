#include "ml/pca.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "ml/linalg.hpp"

namespace aks::ml {

void Pca::fit(const common::Matrix& x) {
  AKS_CHECK(x.rows() >= 2, "PCA needs at least 2 samples, got " << x.rows());
  const std::size_t n = x.rows();
  const std::size_t d = x.cols();
  mean_ = column_means(x);
  const common::Matrix centered = center_columns(x, mean_);

  // At most min(n-1, d) components carry variance.
  std::size_t max_components = std::min(n - 1, d);
  if (n_components_ > 0) {
    max_components =
        std::min(max_components, static_cast<std::size_t>(n_components_));
  }

  std::vector<double> variances;   // eigenvalues of the covariance
  common::Matrix axes;             // rows are principal axes in feature space

  if (d <= n) {
    // Covariance route: eigenvectors are the axes directly.
    const auto eigen = symmetric_eigen(covariance(centered));
    variances.assign(eigen.eigenvalues.begin(), eigen.eigenvalues.end());
    axes = eigen.eigenvectors;
  } else {
    // Gram route: XX^T/(n-1) shares nonzero eigenvalues with the
    // covariance; axes are X^T u / ||X^T u||.
    common::Matrix gram(n, n, 0.0);
    for (std::size_t i = 0; i < n; ++i)
      for (std::size_t j = i; j < n; ++j) {
        const double g = dot(centered.row(i), centered.row(j)) /
                         static_cast<double>(n - 1);
        gram(i, j) = g;
        gram(j, i) = g;
      }
    const auto eigen = symmetric_eigen(gram);
    variances.assign(eigen.eigenvalues.begin(), eigen.eigenvalues.end());
    axes.resize(n, d, 0.0);
    for (std::size_t comp = 0; comp < n; ++comp) {
      // axis = X^T * u_comp, then normalise.
      for (std::size_t i = 0; i < n; ++i) {
        const double u = eigen.eigenvectors(comp, i);
        if (u == 0.0) continue;
        const auto row = centered.row(i);
        for (std::size_t c = 0; c < d; ++c) axes(comp, c) += u * row[c];
      }
      const double len = norm(axes.row(comp));
      if (len > 1e-12) {
        for (std::size_t c = 0; c < d; ++c) axes(comp, c) /= len;
      }
    }
  }

  // Total variance for the ratio includes *all* variance, not only kept
  // components.
  double total = 0.0;
  for (double v : variances) total += std::max(v, 0.0);

  std::size_t kept = 0;
  while (kept < max_components && kept < variances.size() &&
         variances[kept] > 1e-12) {
    ++kept;
  }
  AKS_CHECK(kept > 0, "PCA found no variance in the data");

  components_.resize(kept, d);
  explained_variance_.assign(variances.begin(),
                             variances.begin() + static_cast<std::ptrdiff_t>(kept));
  explained_variance_ratio_.resize(kept);
  for (std::size_t i = 0; i < kept; ++i) {
    std::copy(axes.row(i).begin(), axes.row(i).end(),
              components_.row(i).begin());
    explained_variance_ratio_[i] =
        total > 0.0 ? explained_variance_[i] / total : 0.0;
  }
}

std::size_t Pca::components_for_variance(double threshold) const {
  AKS_CHECK(fitted(), "PCA used before fit");
  AKS_CHECK(threshold > 0.0 && threshold <= 1.0,
            "variance threshold must be in (0,1], got " << threshold);
  double cumulative = 0.0;
  for (std::size_t i = 0; i < explained_variance_ratio_.size(); ++i) {
    cumulative += explained_variance_ratio_[i];
    if (cumulative >= threshold) return i + 1;
  }
  return explained_variance_ratio_.size();
}

common::Matrix Pca::transform(const common::Matrix& x) const {
  AKS_CHECK(fitted(), "PCA used before fit");
  AKS_CHECK(x.cols() == mean_.size(), "PCA: column count changed");
  common::Matrix out(x.rows(), components_.rows());
  std::vector<double> centered(x.cols());
  for (std::size_t r = 0; r < x.rows(); ++r) {
    const auto row = x.row(r);
    for (std::size_t c = 0; c < x.cols(); ++c) centered[c] = row[c] - mean_[c];
    for (std::size_t comp = 0; comp < components_.rows(); ++comp)
      out(r, comp) = dot(components_.row(comp), centered);
  }
  return out;
}

common::Matrix Pca::inverse_transform(const common::Matrix& z) const {
  AKS_CHECK(fitted(), "PCA used before fit");
  AKS_CHECK(z.cols() == components_.rows(),
            "inverse_transform: expected " << components_.rows()
            << " components, got " << z.cols());
  common::Matrix out(z.rows(), mean_.size());
  for (std::size_t r = 0; r < z.rows(); ++r) {
    auto out_row = out.row(r);
    std::copy(mean_.begin(), mean_.end(), out_row.begin());
    for (std::size_t comp = 0; comp < components_.rows(); ++comp) {
      const double weight = z(r, comp);
      if (weight == 0.0) continue;
      const auto axis = components_.row(comp);
      for (std::size_t c = 0; c < out_row.size(); ++c)
        out_row[c] += weight * axis[c];
    }
  }
  return out;
}

}  // namespace aks::ml
