// Random forest classifier: bagged CART trees with per-split feature
// subsampling and majority voting. One of the Table I selector baselines.
#pragma once

#include <cstdint>
#include <vector>

#include "ml/decision_tree.hpp"

namespace aks::ml {

struct ForestOptions {
  int n_trees = 100;
  /// Per-tree options. max_features 0 here means sqrt(num_features).
  TreeOptions tree;
  /// Bootstrap sample size as a fraction of the training set.
  double bootstrap_fraction = 1.0;
  std::uint64_t seed = 0;
};

class RandomForestClassifier {
 public:
  explicit RandomForestClassifier(ForestOptions options = {});

  void fit(const common::Matrix& x, const std::vector<int>& y,
           int num_classes = 0);

  [[nodiscard]] bool fitted() const { return !trees_.empty(); }
  [[nodiscard]] std::size_t num_trees() const { return trees_.size(); }
  [[nodiscard]] int num_classes() const { return num_classes_; }

  [[nodiscard]] int predict_row(std::span<const double> row) const;
  [[nodiscard]] std::vector<int> predict(const common::Matrix& x) const;
  /// Soft votes: mean of per-tree class probabilities.
  [[nodiscard]] std::vector<double> predict_proba_row(
      std::span<const double> row) const;

 private:
  ForestOptions options_;
  std::vector<DecisionTreeClassifier> trees_;
  int num_classes_ = 0;
};

}  // namespace aks::ml
