#include "ml/linalg.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/error.hpp"
#include "common/stats.hpp"

namespace aks::ml {

Matrix matmul(const Matrix& a, const Matrix& b) {
  AKS_CHECK(a.cols() == b.rows(), "matmul: " << a.rows() << "x" << a.cols()
            << " * " << b.rows() << "x" << b.cols());
  Matrix c(a.rows(), b.cols(), 0.0);
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t k = 0; k < a.cols(); ++k) {
      const double aik = a(i, k);
      if (aik == 0.0) continue;
      for (std::size_t j = 0; j < b.cols(); ++j) c(i, j) += aik * b(k, j);
    }
  }
  return c;
}

std::vector<double> matvec(const Matrix& a, std::span<const double> x) {
  AKS_CHECK(a.cols() == x.size(), "matvec: " << a.rows() << "x" << a.cols()
            << " * vec(" << x.size() << ")");
  std::vector<double> y(a.rows(), 0.0);
  for (std::size_t i = 0; i < a.rows(); ++i) {
    y[i] = dot(a.row(i), x);
  }
  return y;
}

double dot(std::span<const double> a, std::span<const double> b) {
  AKS_CHECK(a.size() == b.size(), "dot: size mismatch " << a.size() << " vs "
            << b.size());
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) acc += a[i] * b[i];
  return acc;
}

double norm(std::span<const double> a) { return std::sqrt(dot(a, a)); }

double squared_distance(std::span<const double> a, std::span<const double> b) {
  AKS_CHECK(a.size() == b.size(), "distance: size mismatch");
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    acc += d * d;
  }
  return acc;
}

double distance(std::span<const double> a, std::span<const double> b) {
  return std::sqrt(squared_distance(a, b));
}

std::vector<double> column_means(const Matrix& x) {
  AKS_CHECK(x.rows() > 0, "column_means of empty matrix");
  std::vector<double> means(x.cols(), 0.0);
  for (std::size_t r = 0; r < x.rows(); ++r) {
    const auto row = x.row(r);
    for (std::size_t c = 0; c < x.cols(); ++c) means[c] += row[c];
  }
  for (auto& m : means) m /= static_cast<double>(x.rows());
  return means;
}

Matrix center_columns(const Matrix& x, std::span<const double> means) {
  AKS_CHECK(means.size() == x.cols(), "center_columns: mean size mismatch");
  Matrix out(x.rows(), x.cols());
  for (std::size_t r = 0; r < x.rows(); ++r)
    for (std::size_t c = 0; c < x.cols(); ++c)
      out(r, c) = x(r, c) - means[c];
  return out;
}

Matrix covariance(const Matrix& x) {
  AKS_CHECK(x.rows() >= 2, "covariance needs at least 2 rows");
  const auto means = column_means(x);
  const Matrix centered = center_columns(x, means);
  const std::size_t d = x.cols();
  Matrix cov(d, d, 0.0);
  for (std::size_t r = 0; r < x.rows(); ++r) {
    const auto row = centered.row(r);
    for (std::size_t i = 0; i < d; ++i) {
      const double ri = row[i];
      if (ri == 0.0) continue;
      for (std::size_t j = i; j < d; ++j) cov(i, j) += ri * row[j];
    }
  }
  const double denom = static_cast<double>(x.rows() - 1);
  for (std::size_t i = 0; i < d; ++i)
    for (std::size_t j = i; j < d; ++j) {
      cov(i, j) /= denom;
      cov(j, i) = cov(i, j);
    }
  return cov;
}

EigenResult symmetric_eigen(const Matrix& a, int max_sweeps,
                            double tolerance) {
  AKS_CHECK(a.rows() == a.cols(), "eigen of non-square matrix");
  const std::size_t n = a.rows();
  Matrix m = a;       // working copy, driven to diagonal form
  Matrix v(n, n, 0.0);  // accumulated rotations (columns are eigenvectors)
  for (std::size_t i = 0; i < n; ++i) v(i, i) = 1.0;

  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    // Sum of squared off-diagonal elements decides convergence.
    double off = 0.0;
    for (std::size_t i = 0; i < n; ++i)
      for (std::size_t j = i + 1; j < n; ++j) off += m(i, j) * m(i, j);
    if (off <= tolerance * tolerance) break;

    for (std::size_t p = 0; p < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) {
        const double apq = m(p, q);
        if (std::abs(apq) < 1e-300) continue;
        const double app = m(p, p);
        const double aqq = m(q, q);
        const double theta = (aqq - app) / (2.0 * apq);
        // Stable Jacobi rotation (Golub & Van Loan 8.4).
        const double t = (theta >= 0.0 ? 1.0 : -1.0) /
                         (std::abs(theta) + std::sqrt(theta * theta + 1.0));
        const double c = 1.0 / std::sqrt(t * t + 1.0);
        const double s = t * c;

        for (std::size_t i = 0; i < n; ++i) {
          const double mip = m(i, p);
          const double miq = m(i, q);
          m(i, p) = c * mip - s * miq;
          m(i, q) = s * mip + c * miq;
        }
        for (std::size_t i = 0; i < n; ++i) {
          const double mpi = m(p, i);
          const double mqi = m(q, i);
          m(p, i) = c * mpi - s * mqi;
          m(q, i) = s * mpi + c * mqi;
        }
        for (std::size_t i = 0; i < n; ++i) {
          const double vip = v(i, p);
          const double viq = v(i, q);
          v(i, p) = c * vip - s * viq;
          v(i, q) = s * vip + c * viq;
        }
      }
    }
  }

  std::vector<double> eigenvalues(n);
  for (std::size_t i = 0; i < n; ++i) eigenvalues[i] = m(i, i);
  const auto order = common::argsort_descending(eigenvalues);

  EigenResult result;
  result.eigenvalues.resize(n);
  result.eigenvectors.resize(n, n);
  for (std::size_t rank = 0; rank < n; ++rank) {
    const std::size_t src = order[rank];
    result.eigenvalues[rank] = eigenvalues[src];
    for (std::size_t i = 0; i < n; ++i)
      result.eigenvectors(rank, i) = v(i, src);
  }
  return result;
}

Matrix pairwise_distances(const Matrix& x) {
  const std::size_t n = x.rows();
  Matrix d(n, n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      const double dist = distance(x.row(i), x.row(j));
      d(i, j) = dist;
      d(j, i) = dist;
    }
  }
  return d;
}

}  // namespace aks::ml
