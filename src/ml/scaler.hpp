// Feature standardisation (zero mean, unit variance per column).
//
// The paper's RadialSVM pathology (Section IV, Table I) stems from feeding
// raw matrix dimensions to an RBF kernel; this scaler is what fixes it in
// the ablation bench.
#pragma once

#include <vector>

#include "common/matrix.hpp"

namespace aks::ml {

class StandardScaler {
 public:
  /// Learns per-column mean and standard deviation. Constant columns get a
  /// unit scale so transform() is a no-op for them.
  void fit(const common::Matrix& x);

  [[nodiscard]] bool fitted() const { return !means_.empty(); }

  [[nodiscard]] common::Matrix transform(const common::Matrix& x) const;
  [[nodiscard]] std::vector<double> transform_row(
      std::span<const double> row) const;

  [[nodiscard]] common::Matrix fit_transform(const common::Matrix& x) {
    fit(x);
    return transform(x);
  }

  [[nodiscard]] const std::vector<double>& means() const { return means_; }
  [[nodiscard]] const std::vector<double>& scales() const { return scales_; }

 private:
  std::vector<double> means_;
  std::vector<double> scales_;
};

}  // namespace aks::ml
