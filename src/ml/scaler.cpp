#include "ml/scaler.hpp"

#include <cmath>

#include "common/error.hpp"
#include "ml/linalg.hpp"

namespace aks::ml {

void StandardScaler::fit(const common::Matrix& x) {
  AKS_CHECK(x.rows() > 0, "StandardScaler::fit on empty matrix");
  means_ = column_means(x);
  scales_.assign(x.cols(), 0.0);
  for (std::size_t r = 0; r < x.rows(); ++r) {
    for (std::size_t c = 0; c < x.cols(); ++c) {
      const double d = x(r, c) - means_[c];
      scales_[c] += d * d;
    }
  }
  for (auto& s : scales_) {
    s = std::sqrt(s / static_cast<double>(x.rows()));
    if (s == 0.0) s = 1.0;  // constant column: leave values at zero offset
  }
}

common::Matrix StandardScaler::transform(const common::Matrix& x) const {
  AKS_CHECK(fitted(), "StandardScaler used before fit");
  AKS_CHECK(x.cols() == means_.size(), "StandardScaler: column count changed");
  common::Matrix out(x.rows(), x.cols());
  for (std::size_t r = 0; r < x.rows(); ++r)
    for (std::size_t c = 0; c < x.cols(); ++c)
      out(r, c) = (x(r, c) - means_[c]) / scales_[c];
  return out;
}

std::vector<double> StandardScaler::transform_row(
    std::span<const double> row) const {
  AKS_CHECK(fitted(), "StandardScaler used before fit");
  AKS_CHECK(row.size() == means_.size(), "StandardScaler: column count changed");
  std::vector<double> out(row.size());
  for (std::size_t c = 0; c < row.size(); ++c)
    out[c] = (row[c] - means_[c]) / scales_[c];
  return out;
}

}  // namespace aks::ml
