// Lloyd's k-means with k-means++ seeding and multiple restarts.
//
// Clusters the 640-dimensional normalised-performance vectors (or their PCA
// projections) to find groups of shapes with similar configuration
// preferences — Section III's second and fourth pruning approaches.
#pragma once

#include <cstdint>
#include <vector>

#include "common/matrix.hpp"

namespace aks::ml {

struct KMeansOptions {
  int n_clusters = 8;
  int max_iterations = 300;
  /// Independent restarts; the run with the lowest inertia wins.
  int n_init = 10;
  double tolerance = 1e-6;
  std::uint64_t seed = 0;
};

class KMeans {
 public:
  explicit KMeans(KMeansOptions options = {});

  void fit(const common::Matrix& x);

  [[nodiscard]] bool fitted() const { return !labels_.empty(); }
  [[nodiscard]] const common::Matrix& centroids() const { return centroids_; }
  [[nodiscard]] const std::vector<std::size_t>& labels() const {
    return labels_;
  }
  /// Sum of squared distances of samples to their centroid.
  [[nodiscard]] double inertia() const { return inertia_; }
  [[nodiscard]] int iterations_run() const { return iterations_run_; }

  /// Nearest-centroid assignment for new rows.
  [[nodiscard]] std::vector<std::size_t> predict(const common::Matrix& x) const;

  /// Index of the training row nearest each centroid (the medoid used as a
  /// cluster representative by the pruners).
  [[nodiscard]] std::vector<std::size_t> medoid_rows(
      const common::Matrix& x) const;

 private:
  struct RunResult {
    common::Matrix centroids;
    std::vector<std::size_t> labels;
    double inertia = 0.0;
    int iterations = 0;
  };
  [[nodiscard]] RunResult run_once(const common::Matrix& x,
                                   std::uint64_t seed) const;

  KMeansOptions options_;
  common::Matrix centroids_;
  std::vector<std::size_t> labels_;
  double inertia_ = 0.0;
  int iterations_run_ = 0;
};

}  // namespace aks::ml
