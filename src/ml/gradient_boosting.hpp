// Gradient-boosted decision trees (multi-class MART).
//
// The paper's related work cites Bergstra, Pinto & Cox, "Machine learning
// for predictive auto-tuning with boosted regression trees" — this is that
// model family, applied here as an additional runtime-selection classifier
// beyond the paper's Table I set (bench/ablation_extra_classifiers).
//
// Standard multi-class MART: one shallow regression tree per class per
// round, fitted to the softmax pseudo-residuals, with Friedman's per-leaf
// Newton step and shrinkage.
#pragma once

#include <cstdint>
#include <vector>

#include "ml/decision_tree.hpp"

namespace aks::ml {

struct GbmOptions {
  int n_rounds = 50;
  /// Shrinkage (learning rate).
  double learning_rate = 0.2;
  /// Depth of the per-round trees (MART uses shallow trees).
  int max_depth = 3;
  int min_samples_leaf = 2;
  std::uint64_t seed = 0;
};

class GradientBoostedClassifier {
 public:
  explicit GradientBoostedClassifier(GbmOptions options = {});

  void fit(const common::Matrix& x, const std::vector<int>& y,
           int num_classes = 0);

  [[nodiscard]] bool fitted() const { return !rounds_.empty(); }
  [[nodiscard]] int num_classes() const { return num_classes_; }
  [[nodiscard]] std::size_t num_rounds() const { return rounds_.size(); }

  [[nodiscard]] int predict_row(std::span<const double> row) const;
  [[nodiscard]] std::vector<int> predict(const common::Matrix& x) const;
  /// Raw additive scores per class (pre-softmax).
  [[nodiscard]] std::vector<double> decision_row(
      std::span<const double> row) const;

 private:
  struct ClassTree {
    DecisionTreeRegressor tree;
    /// Leaf node index -> Newton-step leaf value.
    std::vector<double> leaf_gamma;
  };
  struct Round {
    std::vector<ClassTree> per_class;
  };

  GbmOptions options_;
  std::vector<Round> rounds_;
  std::vector<double> base_score_;
  int num_classes_ = 0;
};

}  // namespace aks::ml
