#include "ml/metrics.hpp"

#include <algorithm>
#include <map>

#include "common/error.hpp"

namespace aks::ml {

double accuracy(const std::vector<int>& truth,
                const std::vector<int>& predicted) {
  AKS_CHECK(truth.size() == predicted.size(), "accuracy: size mismatch");
  AKS_CHECK(!truth.empty(), "accuracy of empty labels");
  std::size_t hits = 0;
  for (std::size_t i = 0; i < truth.size(); ++i) {
    hits += truth[i] == predicted[i] ? 1u : 0u;
  }
  return static_cast<double>(hits) / static_cast<double>(truth.size());
}

common::Matrix confusion_matrix(const std::vector<int>& truth,
                                const std::vector<int>& predicted,
                                int num_classes) {
  AKS_CHECK(truth.size() == predicted.size(), "confusion: size mismatch");
  AKS_CHECK(num_classes > 0, "confusion: num_classes must be positive");
  common::Matrix c(static_cast<std::size_t>(num_classes),
                   static_cast<std::size_t>(num_classes), 0.0);
  for (std::size_t i = 0; i < truth.size(); ++i) {
    AKS_CHECK(truth[i] >= 0 && truth[i] < num_classes,
              "label out of range: " << truth[i]);
    AKS_CHECK(predicted[i] >= 0 && predicted[i] < num_classes,
              "prediction out of range: " << predicted[i]);
    c(static_cast<std::size_t>(truth[i]),
      static_cast<std::size_t>(predicted[i])) += 1.0;
  }
  return c;
}

int majority_class(const std::vector<int>& labels) {
  AKS_CHECK(!labels.empty(), "majority of empty labels");
  std::map<int, std::size_t> counts;
  for (const int label : labels) ++counts[label];
  return std::max_element(counts.begin(), counts.end(),
                          [](const auto& a, const auto& b) {
                            return a.second < b.second;
                          })
      ->first;
}

}  // namespace aks::ml
