#include "ml/model_selection.hpp"

#include "common/error.hpp"
#include "common/rng.hpp"
#include "ml/metrics.hpp"

namespace aks::ml {

std::vector<Fold> k_fold(std::size_t n, int folds, std::uint64_t seed) {
  AKS_CHECK(folds >= 2, "need at least 2 folds");
  AKS_CHECK(n >= static_cast<std::size_t>(folds),
            "need at least one row per fold");
  common::Rng rng(seed);
  const auto perm = rng.permutation(n);

  std::vector<Fold> out(static_cast<std::size_t>(folds));
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t fold = i % static_cast<std::size_t>(folds);
    out[fold].validation.push_back(perm[i]);
  }
  for (auto& fold : out) {
    std::sort(fold.validation.begin(), fold.validation.end());
    fold.train.reserve(n - fold.validation.size());
    std::size_t v = 0;
    for (std::size_t i = 0; i < n; ++i) {
      if (v < fold.validation.size() && fold.validation[v] == i) {
        ++v;
      } else {
        fold.train.push_back(i);
      }
    }
  }
  return out;
}

double cross_val_accuracy(const FitPredictFn& fit_predict,
                          const common::Matrix& x, const std::vector<int>& y,
                          int folds, std::uint64_t seed) {
  AKS_CHECK(x.rows() == y.size(), "X/y size mismatch");
  AKS_CHECK(fit_predict != nullptr, "fit_predict must be callable");
  double total = 0.0;
  const auto partitions = k_fold(x.rows(), folds, seed);
  for (const auto& fold : partitions) {
    const common::Matrix x_train = x.select_rows(fold.train);
    const common::Matrix x_val = x.select_rows(fold.validation);
    std::vector<int> y_train;
    y_train.reserve(fold.train.size());
    for (const std::size_t r : fold.train) y_train.push_back(y[r]);
    std::vector<int> y_val;
    y_val.reserve(fold.validation.size());
    for (const std::size_t r : fold.validation) y_val.push_back(y[r]);

    const auto predicted = fit_predict(x_train, y_train, x_val);
    AKS_CHECK(predicted.size() == y_val.size(),
              "fit_predict returned " << predicted.size()
              << " labels for " << y_val.size() << " rows");
    total += accuracy(y_val, predicted);
  }
  return total / static_cast<double>(partitions.size());
}

}  // namespace aks::ml
