#include "ml/agglomerative.hpp"

#include <algorithm>
#include <limits>
#include <numeric>

#include "common/error.hpp"
#include "ml/linalg.hpp"

namespace aks::ml {

Agglomerative::Agglomerative(AgglomerativeOptions options)
    : options_(options) {
  AKS_CHECK(options_.n_clusters >= 1, "n_clusters must be positive");
}

void Agglomerative::fit(const common::Matrix& x) {
  const std::size_t n = x.rows();
  AKS_CHECK(n >= static_cast<std::size_t>(options_.n_clusters),
            "need at least n_clusters samples, got " << n);

  common::Matrix dist = pairwise_distances(x);
  std::vector<bool> active(n, true);
  std::vector<std::size_t> sizes(n, 1);
  // Cluster membership as a representative index per row.
  std::vector<std::size_t> rep(n);
  std::iota(rep.begin(), rep.end(), std::size_t{0});

  merge_distances_.clear();
  std::size_t clusters = n;
  const auto target = static_cast<std::size_t>(options_.n_clusters);
  while (clusters > target) {
    // Closest active pair.
    std::size_t best_i = 0;
    std::size_t best_j = 0;
    double best = std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < n; ++i) {
      if (!active[i]) continue;
      for (std::size_t j = i + 1; j < n; ++j) {
        if (!active[j]) continue;
        if (dist(i, j) < best) {
          best = dist(i, j);
          best_i = i;
          best_j = j;
        }
      }
    }
    merge_distances_.push_back(best);

    // Merge j into i with a Lance-Williams update of the distances.
    for (std::size_t k = 0; k < n; ++k) {
      if (!active[k] || k == best_i || k == best_j) continue;
      double updated = 0.0;
      switch (options_.linkage) {
        case Linkage::kSingle:
          updated = std::min(dist(best_i, k), dist(best_j, k));
          break;
        case Linkage::kComplete:
          updated = std::max(dist(best_i, k), dist(best_j, k));
          break;
        case Linkage::kAverage: {
          const double ni = static_cast<double>(sizes[best_i]);
          const double nj = static_cast<double>(sizes[best_j]);
          updated = (ni * dist(best_i, k) + nj * dist(best_j, k)) / (ni + nj);
          break;
        }
      }
      dist(best_i, k) = updated;
      dist(k, best_i) = updated;
    }
    sizes[best_i] += sizes[best_j];
    active[best_j] = false;
    for (std::size_t r = 0; r < n; ++r) {
      if (rep[r] == best_j) rep[r] = best_i;
    }
    --clusters;
  }

  // Compact representative indices to labels 0..target-1 (ordered by first
  // appearance, so labelling is deterministic).
  labels_.assign(n, 0);
  std::vector<std::size_t> seen;
  for (std::size_t r = 0; r < n; ++r) {
    const auto it = std::find(seen.begin(), seen.end(), rep[r]);
    if (it == seen.end()) {
      labels_[r] = seen.size();
      seen.push_back(rep[r]);
    } else {
      labels_[r] = static_cast<std::size_t>(std::distance(seen.begin(), it));
    }
  }
  num_clusters_ = seen.size();
}

std::vector<std::size_t> Agglomerative::medoid_rows(
    const common::Matrix& x) const {
  AKS_CHECK(fitted(), "Agglomerative used before fit");
  AKS_CHECK(x.rows() == labels_.size(), "medoid_rows expects the training matrix");
  std::vector<std::size_t> medoids(num_clusters_, 0);
  std::vector<double> best(num_clusters_,
                           std::numeric_limits<double>::infinity());
  for (std::size_t i = 0; i < x.rows(); ++i) {
    double total = 0.0;
    for (std::size_t j = 0; j < x.rows(); ++j) {
      if (labels_[j] == labels_[i]) total += distance(x.row(i), x.row(j));
    }
    if (total < best[labels_[i]]) {
      best[labels_[i]] = total;
      medoids[labels_[i]] = i;
    }
  }
  return medoids;
}

}  // namespace aks::ml
