// HDBSCAN* density-based clustering (Campello, Moulavi & Sander 2013),
// following the reference implementation's structure:
//
//   1. core distances (distance to the min_samples-th neighbour),
//   2. mutual-reachability distances,
//   3. minimum spanning tree of the mutual-reachability graph (Prim),
//   4. single-linkage hierarchy from sorted MST edges (union-find),
//   5. condensed tree with a min_cluster_size threshold,
//   6. cluster extraction by Excess of Mass stability,
//   7. labels with noise = -1.
//
// The datasets here are small (<= a few hundred points), so the O(n^2)
// dense formulation is used throughout.
#pragma once

#include <cstddef>
#include <vector>

#include "common/matrix.hpp"

namespace aks::ml {

struct HdbscanOptions {
  /// Smallest group of points considered a cluster.
  int min_cluster_size = 5;
  /// Neighbour count for core distances; 0 means min_cluster_size.
  int min_samples = 0;
  /// Permit the hierarchy root itself to be returned as a cluster when
  /// nothing below it is more stable.
  bool allow_single_cluster = false;
};

class Hdbscan {
 public:
  explicit Hdbscan(HdbscanOptions options = {});

  void fit(const common::Matrix& x);

  [[nodiscard]] bool fitted() const { return fitted_; }
  /// Cluster label per training row; -1 marks noise.
  [[nodiscard]] const std::vector<int>& labels() const { return labels_; }
  [[nodiscard]] std::size_t num_clusters() const { return num_clusters_; }
  /// Excess-of-Mass stability per cluster label.
  [[nodiscard]] const std::vector<double>& cluster_stabilities() const {
    return stabilities_;
  }
  /// Membership strength per point (normalised lambda within its cluster;
  /// 0 for noise).
  [[nodiscard]] const std::vector<double>& probabilities() const {
    return probabilities_;
  }

  /// Medoid training row of each cluster (point minimising total distance
  /// to its cluster co-members).
  [[nodiscard]] std::vector<std::size_t> medoid_rows(
      const common::Matrix& x) const;

 private:
  HdbscanOptions options_;
  bool fitted_ = false;
  std::vector<int> labels_;
  std::vector<double> stabilities_;
  std::vector<double> probabilities_;
  std::size_t num_clusters_ = 0;
};

}  // namespace aks::ml
