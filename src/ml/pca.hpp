// Principal component analysis.
//
// Used two ways in the paper: (a) the explained-variance curve that picks
// the target number of kernels (Figure 3), and (b) dimensionality reduction
// ahead of k-means in the PCA+k-means pruner.
//
// When the data has more columns than rows (the 640-wide performance
// vectors with ~140 training rows), the eigendecomposition runs on the
// n x n Gram matrix instead of the d x d covariance — identical components,
// much cheaper.
#pragma once

#include <vector>

#include "common/matrix.hpp"

namespace aks::ml {

class Pca {
 public:
  /// `n_components` <= 0 keeps every component with positive variance.
  explicit Pca(int n_components = 0) : n_components_(n_components) {}

  void fit(const common::Matrix& x);

  [[nodiscard]] bool fitted() const { return !explained_variance_.empty(); }
  [[nodiscard]] std::size_t num_components() const {
    return components_.rows();
  }

  /// Row i is the i-th principal axis (unit vector in feature space).
  [[nodiscard]] const common::Matrix& components() const { return components_; }
  [[nodiscard]] const std::vector<double>& explained_variance() const {
    return explained_variance_;
  }
  /// Fraction of total variance per component (sums to <= 1).
  [[nodiscard]] const std::vector<double>& explained_variance_ratio() const {
    return explained_variance_ratio_;
  }
  [[nodiscard]] const std::vector<double>& mean() const { return mean_; }

  /// Smallest number of components whose cumulative ratio reaches
  /// `threshold` (e.g. 0.8 -> 4 in the paper).
  [[nodiscard]] std::size_t components_for_variance(double threshold) const;

  /// Projects rows of X into component space (n x num_components).
  [[nodiscard]] common::Matrix transform(const common::Matrix& x) const;

  /// Maps component-space rows back to the original feature space.
  [[nodiscard]] common::Matrix inverse_transform(const common::Matrix& z) const;

 private:
  int n_components_;
  common::Matrix components_;
  std::vector<double> explained_variance_;
  std::vector<double> explained_variance_ratio_;
  std::vector<double> mean_;
};

}  // namespace aks::ml
