#include "ml/kmeans.hpp"

#include <algorithm>
#include <limits>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "ml/linalg.hpp"

namespace aks::ml {

KMeans::KMeans(KMeansOptions options) : options_(options) {
  AKS_CHECK(options_.n_clusters > 0, "n_clusters must be positive");
  AKS_CHECK(options_.max_iterations > 0, "max_iterations must be positive");
  AKS_CHECK(options_.n_init > 0, "n_init must be positive");
}

KMeans::RunResult KMeans::run_once(const common::Matrix& x,
                                   std::uint64_t seed) const {
  const std::size_t n = x.rows();
  const auto k = static_cast<std::size_t>(options_.n_clusters);
  common::Rng rng(seed);

  // --- k-means++ seeding -------------------------------------------------
  common::Matrix centroids(k, x.cols());
  std::vector<double> min_sq(n, std::numeric_limits<double>::infinity());
  {
    const std::size_t first = rng.uniform_index(n);
    std::copy(x.row(first).begin(), x.row(first).end(),
              centroids.row(0).begin());
  }
  for (std::size_t c = 1; c < k; ++c) {
    double total = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      min_sq[i] = std::min(min_sq[i],
                           squared_distance(x.row(i), centroids.row(c - 1)));
      total += min_sq[i];
    }
    std::size_t chosen = 0;
    if (total > 0.0) {
      // Sample proportional to squared distance.
      double target = rng.uniform() * total;
      for (std::size_t i = 0; i < n; ++i) {
        target -= min_sq[i];
        if (target <= 0.0) {
          chosen = i;
          break;
        }
      }
    } else {
      chosen = rng.uniform_index(n);  // all points identical
    }
    std::copy(x.row(chosen).begin(), x.row(chosen).end(),
              centroids.row(c).begin());
  }

  // --- Lloyd iterations ----------------------------------------------------
  RunResult result;
  result.labels.assign(n, 0);
  std::vector<std::size_t> counts(k);
  common::Matrix sums(k, x.cols());
  double prev_inertia = std::numeric_limits<double>::infinity();

  for (int iter = 0; iter < options_.max_iterations; ++iter) {
    double inertia = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      double best = std::numeric_limits<double>::infinity();
      std::size_t best_c = 0;
      for (std::size_t c = 0; c < k; ++c) {
        const double d = squared_distance(x.row(i), centroids.row(c));
        if (d < best) {
          best = d;
          best_c = c;
        }
      }
      result.labels[i] = best_c;
      inertia += best;
    }
    result.iterations = iter + 1;
    result.inertia = inertia;

    sums.fill(0.0);
    std::fill(counts.begin(), counts.end(), 0);
    for (std::size_t i = 0; i < n; ++i) {
      const std::size_t c = result.labels[i];
      ++counts[c];
      const auto row = x.row(i);
      auto sum_row = sums.row(c);
      for (std::size_t j = 0; j < row.size(); ++j) sum_row[j] += row[j];
    }
    for (std::size_t c = 0; c < k; ++c) {
      if (counts[c] == 0) {
        // Re-seed an empty cluster at the point farthest from its centroid.
        std::size_t farthest = 0;
        double worst = -1.0;
        for (std::size_t i = 0; i < n; ++i) {
          const double d = squared_distance(
              x.row(i), centroids.row(result.labels[i]));
          if (d > worst) {
            worst = d;
            farthest = i;
          }
        }
        std::copy(x.row(farthest).begin(), x.row(farthest).end(),
                  centroids.row(c).begin());
        continue;
      }
      auto cen = centroids.row(c);
      const auto sum_row = sums.row(c);
      for (std::size_t j = 0; j < cen.size(); ++j)
        cen[j] = sum_row[j] / static_cast<double>(counts[c]);
    }

    if (prev_inertia - inertia <= options_.tolerance * prev_inertia) break;
    prev_inertia = inertia;
  }
  result.centroids = std::move(centroids);
  return result;
}

void KMeans::fit(const common::Matrix& x) {
  AKS_CHECK(x.rows() >= static_cast<std::size_t>(options_.n_clusters),
            "k-means with " << options_.n_clusters << " clusters needs at "
            "least that many samples, got " << x.rows());
  common::Rng seeder(options_.seed);
  RunResult best;
  best.inertia = std::numeric_limits<double>::infinity();
  for (int attempt = 0; attempt < options_.n_init; ++attempt) {
    RunResult run = run_once(x, seeder.fork_seed());
    if (run.inertia < best.inertia) best = std::move(run);
  }
  centroids_ = std::move(best.centroids);
  labels_ = std::move(best.labels);
  inertia_ = best.inertia;
  iterations_run_ = best.iterations;
}

std::vector<std::size_t> KMeans::predict(const common::Matrix& x) const {
  AKS_CHECK(fitted(), "KMeans used before fit");
  AKS_CHECK(x.cols() == centroids_.cols(), "KMeans: column count changed");
  std::vector<std::size_t> labels(x.rows());
  for (std::size_t i = 0; i < x.rows(); ++i) {
    double best = std::numeric_limits<double>::infinity();
    for (std::size_t c = 0; c < centroids_.rows(); ++c) {
      const double d = squared_distance(x.row(i), centroids_.row(c));
      if (d < best) {
        best = d;
        labels[i] = c;
      }
    }
  }
  return labels;
}

std::vector<std::size_t> KMeans::medoid_rows(const common::Matrix& x) const {
  AKS_CHECK(fitted(), "KMeans used before fit");
  AKS_CHECK(x.rows() == labels_.size(),
            "medoid_rows expects the training matrix");
  std::vector<std::size_t> medoids(centroids_.rows(), 0);
  std::vector<double> best(centroids_.rows(),
                           std::numeric_limits<double>::infinity());
  for (std::size_t i = 0; i < x.rows(); ++i) {
    const std::size_t c = labels_[i];
    const double d = squared_distance(x.row(i), centroids_.row(c));
    if (d < best[c]) {
      best[c] = d;
      medoids[c] = i;
    }
  }
  return medoids;
}

}  // namespace aks::ml
