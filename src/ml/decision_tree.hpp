// CART decision trees, in the two roles the paper uses them:
//
//  * multi-output regression from matrix sizes to the 640-vector of
//    normalised performances, with `max_leaf_nodes` bounding the number of
//    distinct predicted vectors — Section III's decision-tree pruner;
//  * classification from matrix sizes to the best pruned configuration —
//    Section IV's runtime selector, deployable as nested if statements.
//
// Growth is best-first (largest impurity improvement next, as scikit-learn
// does when max_leaf_nodes is set) so a leaf budget spends itself where it
// buys the most.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/matrix.hpp"

namespace aks::ml {

struct TreeOptions {
  /// Maximum number of leaves; 0 means unlimited.
  int max_leaf_nodes = 0;
  /// Maximum depth; 0 means unlimited.
  int max_depth = 0;
  int min_samples_split = 2;
  int min_samples_leaf = 1;
  /// Features examined per split; 0 means all. Used by random forests.
  int max_features = 0;
  /// Seed for feature subsampling (only used when max_features > 0).
  std::uint64_t seed = 0;
};

/// Impurity-weighted feature importances of a fitted tree (Gini/MSE
/// importance): for each feature, the total impurity decrease of the splits
/// that use it, normalised to sum to 1. Shared by both tree types.
[[nodiscard]] std::vector<double> feature_importances(
    const std::vector<struct TreeNode>& nodes, std::size_t num_features);

/// One node of a fitted tree. Leaves have feature == -1.
struct TreeNode {
  int feature = -1;
  double threshold = 0.0;
  int left = -1;
  int right = -1;
  /// Mean output vector (regression) or class-count vector (classification).
  std::vector<double> value;
  std::size_t n_samples = 0;
  double impurity = 0.0;

  [[nodiscard]] bool is_leaf() const { return feature < 0; }
};

class DecisionTreeRegressor {
 public:
  explicit DecisionTreeRegressor(TreeOptions options = {});

  /// Multi-output regression: y has one row per sample.
  void fit(const common::Matrix& x, const common::Matrix& y);

  [[nodiscard]] bool fitted() const { return !nodes_.empty(); }
  [[nodiscard]] const std::vector<TreeNode>& nodes() const { return nodes_; }
  [[nodiscard]] std::size_t num_leaves() const;

  /// Predicted output vector for one feature row.
  [[nodiscard]] const std::vector<double>& predict_row(
      std::span<const double> row) const;
  [[nodiscard]] common::Matrix predict(const common::Matrix& x) const;

  /// Index (into nodes()) of the leaf a feature row lands in. Used by
  /// gradient boosting to re-estimate leaf values under its own loss.
  [[nodiscard]] std::size_t leaf_index_row(std::span<const double> row) const;

  /// The distinct leaf value vectors, in node order — the cluster
  /// representatives the pruner consumes.
  [[nodiscard]] std::vector<std::vector<double>> leaf_values() const;

 private:
  TreeOptions options_;
  std::vector<TreeNode> nodes_;
  std::size_t num_features_ = 0;
};

class DecisionTreeClassifier {
 public:
  explicit DecisionTreeClassifier(TreeOptions options = {});

  /// Reconstructs a fitted classifier from serialised nodes (used by
  /// core/serialize). Validates the node graph: child indices in range,
  /// every leaf value has num_classes entries.
  static DecisionTreeClassifier from_nodes(std::vector<TreeNode> nodes,
                                           int num_classes,
                                           std::size_t num_features);

  /// `y` holds labels in [0, num_classes); num_classes 0 means max(y)+1.
  void fit(const common::Matrix& x, const std::vector<int>& y,
           int num_classes = 0);

  [[nodiscard]] bool fitted() const { return !nodes_.empty(); }
  [[nodiscard]] const std::vector<TreeNode>& nodes() const { return nodes_; }
  [[nodiscard]] std::size_t num_leaves() const;
  [[nodiscard]] int num_classes() const { return num_classes_; }

  [[nodiscard]] int predict_row(std::span<const double> row) const;
  [[nodiscard]] std::vector<int> predict(const common::Matrix& x) const;
  /// Class probabilities (leaf class frequencies).
  [[nodiscard]] std::vector<double> predict_proba_row(
      std::span<const double> row) const;

 private:
  TreeOptions options_;
  std::vector<TreeNode> nodes_;
  std::size_t num_features_ = 0;
  int num_classes_ = 0;
};

}  // namespace aks::ml
