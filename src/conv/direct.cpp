#include "conv/direct.hpp"

#include "common/error.hpp"

namespace aks::conv {

namespace {
/// Local widening cast for index arithmetic on validated dimensions.
inline std::size_t zu(int v) { return static_cast<std::size_t>(v); }
}  // namespace

void direct_conv2d(std::span<const float> input, std::span<const float> filter,
                   std::span<float> output, const ConvShape& shape) {
  AKS_CHECK(shape.batch > 0 && shape.in_channels > 0 && shape.out_channels > 0,
            "degenerate conv shape");
  AKS_CHECK(shape.out_height() > 0 && shape.out_width() > 0,
            "conv produces empty output");
  AKS_CHECK(input.size() == shape.input_size(), "input size mismatch");
  AKS_CHECK(filter.size() == shape.filter_size(), "filter size mismatch");
  AKS_CHECK(output.size() == shape.output_size(), "output size mismatch");

  const int oh = shape.out_height();
  const int ow = shape.out_width();
  const auto in_c = static_cast<std::size_t>(shape.in_channels);
  const auto out_c = static_cast<std::size_t>(shape.out_channels);
  const auto in_w = static_cast<std::size_t>(shape.in_width);
  const auto in_h = static_cast<std::size_t>(shape.in_height);

  std::fill(output.begin(), output.end(), 0.0f);
  for (int n = 0; n < shape.batch; ++n) {
    const std::size_t in_base = zu(n) * in_h * in_w * in_c;
    const std::size_t out_base = zu(n) * zu(oh) * zu(ow) * out_c;
    for (int y = 0; y < oh; ++y) {
      for (int x = 0; x < ow; ++x) {
        float* out_px =
            &output[out_base + (zu(y) * zu(ow) + zu(x)) * out_c];
        for (int ky = 0; ky < shape.kernel; ++ky) {
          const int in_y = y * shape.stride + ky - shape.padding;
          if (in_y < 0 || in_y >= shape.in_height) continue;
          for (int kx = 0; kx < shape.kernel; ++kx) {
            const int in_x = x * shape.stride + kx - shape.padding;
            if (in_x < 0 || in_x >= shape.in_width) continue;
            const float* in_px =
                &input[in_base +
                       (zu(in_y) * in_w + zu(in_x)) * in_c];
            const float* filt =
                &filter[(zu(ky) * zu(shape.kernel) + zu(kx)) * in_c * out_c];
            for (std::size_t c = 0; c < in_c; ++c) {
              const float v = in_px[c];
              if (v == 0.0f) continue;
              const float* filt_c = &filt[c * out_c];
              for (std::size_t f = 0; f < out_c; ++f) {
                out_px[f] += v * filt_c[f];
              }
            }
          }
        }
      }
    }
  }
}

}  // namespace aks::conv
