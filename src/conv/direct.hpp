// Direct (naive) 2-D convolution — the correctness oracle for the GEMM-based
// convolution paths in this module.
//
// Layouts: activations NHWC, filters [kh, kw, in_c, out_c] (HWIO). Only
// square kernels/strides/padding are needed by the network zoo.
#pragma once

#include <cstddef>
#include <span>

namespace aks::conv {

/// Static description of one convolution execution.
struct ConvShape {
  int batch = 1;
  int in_height = 0;
  int in_width = 0;
  int in_channels = 0;
  int out_channels = 0;
  int kernel = 1;
  int stride = 1;
  int padding = 0;

  [[nodiscard]] int out_height() const {
    return (in_height + 2 * padding - kernel) / stride + 1;
  }
  [[nodiscard]] int out_width() const {
    return (in_width + 2 * padding - kernel) / stride + 1;
  }
  [[nodiscard]] std::size_t input_size() const {
    return static_cast<std::size_t>(batch) *
           static_cast<std::size_t>(in_height) *
           static_cast<std::size_t>(in_width) *
           static_cast<std::size_t>(in_channels);
  }
  [[nodiscard]] std::size_t filter_size() const {
    return static_cast<std::size_t>(kernel) * static_cast<std::size_t>(kernel) *
           static_cast<std::size_t>(in_channels) *
           static_cast<std::size_t>(out_channels);
  }
  [[nodiscard]] std::size_t output_size() const {
    return static_cast<std::size_t>(batch) *
           static_cast<std::size_t>(out_height()) *
           static_cast<std::size_t>(out_width()) *
           static_cast<std::size_t>(out_channels);
  }
};

/// output[n, y, x, f] = sum_{ky, kx, c} input[n, sy+ky-p, sx+kx-p, c] *
/// filter[ky, kx, c, f]; zero padding outside. Sizes are validated.
void direct_conv2d(std::span<const float> input, std::span<const float> filter,
                   std::span<float> output, const ConvShape& shape);

}  // namespace aks::conv
