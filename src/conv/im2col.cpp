#include "conv/im2col.hpp"

#include "common/error.hpp"
#include "gemm/registry.hpp"

namespace aks::conv {

namespace {
/// Local widening cast for index arithmetic on validated dimensions.
inline std::size_t zu(int v) { return static_cast<std::size_t>(v); }
}  // namespace

gemm::GemmShape im2col_gemm_shape(const ConvShape& shape) {
  gemm::GemmShape out;
  out.m = zu(shape.batch) * zu(shape.out_height()) * zu(shape.out_width());
  out.k = zu(shape.kernel) * zu(shape.kernel) * zu(shape.in_channels);
  out.n = zu(shape.out_channels);
  return out;
}

std::vector<float> im2col_transform(std::span<const float> input,
                                    const ConvShape& shape) {
  AKS_CHECK(input.size() == shape.input_size(), "input size mismatch");
  const auto gemm_shape = im2col_gemm_shape(shape);
  std::vector<float> patches(gemm_shape.m * gemm_shape.k, 0.0f);

  const int oh = shape.out_height();
  const int ow = shape.out_width();
  const auto in_c = static_cast<std::size_t>(shape.in_channels);
  const auto in_w = static_cast<std::size_t>(shape.in_width);
  const auto in_h = static_cast<std::size_t>(shape.in_height);

  std::size_t row = 0;
  for (int n = 0; n < shape.batch; ++n) {
    const std::size_t in_base = zu(n) * in_h * in_w * in_c;
    for (int y = 0; y < oh; ++y) {
      for (int x = 0; x < ow; ++x, ++row) {
        float* out_row = &patches[row * gemm_shape.k];
        for (int ky = 0; ky < shape.kernel; ++ky) {
          const int in_y = y * shape.stride + ky - shape.padding;
          if (in_y < 0 || in_y >= shape.in_height) continue;
          for (int kx = 0; kx < shape.kernel; ++kx) {
            const int in_x = x * shape.stride + kx - shape.padding;
            if (in_x < 0 || in_x >= shape.in_width) continue;
            const float* src =
                &input[in_base + (zu(in_y) * in_w + zu(in_x)) * in_c];
            float* dst =
                &out_row[(zu(ky) * zu(shape.kernel) + zu(kx)) * in_c];
            std::copy(src, src + in_c, dst);
          }
        }
      }
    }
  }
  return patches;
}

void im2col_conv2d(syclrt::Queue& queue, const gemm::KernelConfig& config,
                   std::span<const float> input, std::span<const float> filter,
                   std::span<float> output, const ConvShape& shape) {
  im2col_conv2d(queue, config, input, filter, output, shape,
                [](syclrt::Queue& q, const gemm::KernelConfig& cfg,
                   std::span<const float> a, std::span<const float> b,
                   std::span<float> c, const gemm::GemmShape& s) {
                  return gemm::launch_gemm(q, cfg, a, b, c, s);
                });
}

void im2col_conv2d(syclrt::Queue& queue, const gemm::KernelConfig& config,
                   std::span<const float> input, std::span<const float> filter,
                   std::span<float> output, const ConvShape& shape,
                   const GemmLaunchFn& launch) {
  AKS_CHECK(filter.size() == shape.filter_size(), "filter size mismatch");
  AKS_CHECK(output.size() == shape.output_size(), "output size mismatch");
  const auto patches = im2col_transform(input, shape);
  const auto gemm_shape = im2col_gemm_shape(shape);
  // The HWIO filter flattens directly to [kh*kw*in_c, out_c]; the NHWC
  // output flattens directly to [batch*oh*ow, out_c].
  launch(queue, config, patches, filter, output, gemm_shape);
}

}  // namespace aks::conv
