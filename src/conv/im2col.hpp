// Convolution as GEMM via the im2col transformation.
//
// im2col lays every receptive field out as a row of a patch matrix
// P[batch*out_h*out_w, kh*kw*in_c]; the convolution is then
// O = P * F with the filter viewed as F[kh*kw*in_c, out_c] — exactly the
// (M, K, N) triple the dataset layer extracts for conv layers.
#pragma once

#include <functional>
#include <span>
#include <vector>

#include "conv/direct.hpp"
#include "gemm/config.hpp"
#include "gemm/shape.hpp"
#include "syclrt/queue.hpp"

namespace aks::conv {

/// The GEMM this convolution lowers to (matches data::im2col_shape).
[[nodiscard]] gemm::GemmShape im2col_gemm_shape(const ConvShape& shape);

/// Expands the input into the patch matrix (zero padding outside).
[[nodiscard]] std::vector<float> im2col_transform(std::span<const float> input,
                                                  const ConvShape& shape);

/// Launch used for the patch-matrix multiply. The default forwards to
/// gemm::launch_gemm; the checked execution mode (src/check) injects a
/// launcher that routes the same multiply through recording buffers, so
/// conv lowerings are analysed through their production code path.
using GemmLaunchFn = std::function<syclrt::Event(
    syclrt::Queue&, const gemm::KernelConfig&, std::span<const float>,
    std::span<const float>, std::span<float>, const gemm::GemmShape&)>;

/// Runs the convolution as im2col + a tiled GEMM with `config` on `queue`.
/// Output layout matches direct_conv2d.
void im2col_conv2d(syclrt::Queue& queue, const gemm::KernelConfig& config,
                   std::span<const float> input, std::span<const float> filter,
                   std::span<float> output, const ConvShape& shape);

/// As above with an injected GEMM launch (see GemmLaunchFn).
void im2col_conv2d(syclrt::Queue& queue, const gemm::KernelConfig& config,
                   std::span<const float> input, std::span<const float> filter,
                   std::span<float> output, const ConvShape& shape,
                   const GemmLaunchFn& launch);

}  // namespace aks::conv
