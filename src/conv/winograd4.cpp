// Winograd F(4x4, 3x3): 6x6 input tiles, 4x4 output tiles, 36 multiplies.
//
// Transform matrices (Lavin & Gray, "Fast Algorithms for Convolutional
// Neural Networks"):
//
//         | 4  0 -5  0  1  0 |        | 1/4    0     0   |
//         | 0 -4 -4  1  1  0 |        | -1/6 -1/6  -1/6  |
//   B^T = | 0  4 -4 -1  1  0 |    G = | -1/6  1/6  -1/6  |
//         | 0 -2 -1  2  1  0 |        | 1/24  1/12  1/6  |
//         | 0  2 -1 -2  1  0 |        | 1/24 -1/12  1/6  |
//         | 0  4  0 -5  0  1 |        |  0     0     1   |
//
//         | 1 1  1 1  1 0 |
//   A^T = | 0 1 -1 2 -2 0 |
//         | 0 1  1 4  4 0 |
//         | 0 1 -1 8 -8 1 |
//
// Generic small-matrix transforms are used instead of hand-unrolling —
// clearer, and this path is an extension rather than the benchmarked
// kernel itself.
#include <vector>

#include "common/error.hpp"
#include "conv/winograd.hpp"
#include "gemm/registry.hpp"

namespace aks::conv {

namespace {

inline std::size_t zu(int v) { return static_cast<std::size_t>(v); }

constexpr double kBT[6][6] = {
    {4, 0, -5, 0, 1, 0},  {0, -4, -4, 1, 1, 0}, {0, 4, -4, -1, 1, 0},
    {0, -2, -1, 2, 1, 0}, {0, 2, -1, -2, 1, 0}, {0, 4, 0, -5, 0, 1},
};

constexpr double kG[6][3] = {
    {1.0 / 4, 0, 0},
    {-1.0 / 6, -1.0 / 6, -1.0 / 6},
    {-1.0 / 6, 1.0 / 6, -1.0 / 6},
    {1.0 / 24, 1.0 / 12, 1.0 / 6},
    {1.0 / 24, -1.0 / 12, 1.0 / 6},
    {0, 0, 1},
};

constexpr double kAT[4][6] = {
    {1, 1, 1, 1, 1, 0},
    {0, 1, -1, 2, -2, 0},
    {0, 1, 1, 4, 4, 0},
    {0, 1, -1, 8, -8, 1},
};

/// out[R x C2] = L[R x C1] * in[C1 x C2] * L2^T where the caller expresses
/// both steps explicitly; here: t = M * d (R1xC * CxC2).
template <std::size_t R, std::size_t C, std::size_t C2>
void matmul_small(const double (&m)[R][C], const float (&in)[C][C2],
                  float (&out)[R][C2]) {
  for (std::size_t r = 0; r < R; ++r) {
    for (std::size_t c2 = 0; c2 < C2; ++c2) {
      double acc = 0.0;
      for (std::size_t c = 0; c < C; ++c) acc += m[r][c] * in[c][c2];
      out[r][c2] = static_cast<float>(acc);
    }
  }
}

/// Same, with the fixed matrix applied from the right as its transpose:
/// out = in * M^T   (in[R2 x C], M[R x C]).
template <std::size_t R2, std::size_t C, std::size_t R>
void matmul_small_rt(const float (&in)[R2][C], const double (&m)[R][C],
                     float (&out)[R2][R]) {
  for (std::size_t r2 = 0; r2 < R2; ++r2) {
    for (std::size_t r = 0; r < R; ++r) {
      double acc = 0.0;
      for (std::size_t c = 0; c < C; ++c) acc += in[r2][c] * m[r][c];
      out[r2][r] = static_cast<float>(acc);
    }
  }
}

}  // namespace

gemm::GemmShape winograd4_gemm_shape(const ConvShape& shape) {
  const auto tiles_h = zu((shape.out_height() + 3) / 4);
  const auto tiles_w = zu((shape.out_width() + 3) / 4);
  gemm::GemmShape out;
  out.m = zu(shape.batch) * tiles_h * tiles_w;
  out.k = zu(shape.in_channels);
  out.n = zu(shape.out_channels);
  return out;
}

void winograd4_conv2d(syclrt::Queue& queue, const gemm::KernelConfig& config,
                      std::span<const float> input,
                      std::span<const float> filter, std::span<float> output,
                      const ConvShape& shape) {
  winograd4_conv2d(queue, config, input, filter, output, shape,
                   [](syclrt::Queue& q, const gemm::KernelConfig& cfg,
                      std::span<const float> a, std::span<const float> b,
                      std::span<float> c, const gemm::GemmShape& s,
                      std::size_t batch) {
                     return gemm::launch_batched_gemm(q, cfg, a, b, c, s,
                                                      batch);
                   });
}

void winograd4_conv2d(syclrt::Queue& queue, const gemm::KernelConfig& config,
                      std::span<const float> input,
                      std::span<const float> filter, std::span<float> output,
                      const ConvShape& shape,
                      const BatchedGemmLaunchFn& launch) {
  AKS_CHECK(winograd_applicable(shape),
            "Winograd F(4x4,3x3) requires a 3x3 stride-1 convolution");
  AKS_CHECK(input.size() == shape.input_size(), "input size mismatch");
  AKS_CHECK(filter.size() == shape.filter_size(), "filter size mismatch");
  AKS_CHECK(output.size() == shape.output_size(), "output size mismatch");

  const auto mm = winograd4_gemm_shape(shape);
  const std::size_t tiles = mm.m;
  const auto in_c = zu(shape.in_channels);
  const auto out_c = zu(shape.out_channels);
  const int tiles_h = (shape.out_height() + 3) / 4;
  const int tiles_w = (shape.out_width() + 3) / 4;

  // Filter transform: U = G g G^T, packed [pos][c, f], pos in 0..35.
  const std::size_t u_plane = in_c * out_c;
  std::vector<float> u(kWinogradF4Multiplies * u_plane, 0.0f);
  for (std::size_t c = 0; c < in_c; ++c) {
    for (std::size_t f = 0; f < out_c; ++f) {
      float g[3][3];
      for (int ky = 0; ky < 3; ++ky)
        for (int kx = 0; kx < 3; ++kx)
          g[ky][kx] = filter[((zu(ky) * 3 + zu(kx)) * in_c + c) * out_c + f];
      float gg[6][3];
      matmul_small(kG, g, gg);
      float ut[6][6];
      matmul_small_rt(gg, kG, ut);
      for (int pos = 0; pos < 36; ++pos) {
        u[zu(pos) * u_plane + c * out_c + f] = ut[pos / 6][pos % 6];
      }
    }
  }

  // Input transform: V = B^T d B, packed [pos][tile, c].
  const std::size_t v_plane = tiles * in_c;
  std::vector<float> v(kWinogradF4Multiplies * v_plane, 0.0f);
  const auto in_w = zu(shape.in_width);
  for (int n = 0; n < shape.batch; ++n) {
    const std::size_t in_base =
        zu(n) * zu(shape.in_height) * zu(shape.in_width) * in_c;
    for (int ty = 0; ty < tiles_h; ++ty) {
      for (int tx = 0; tx < tiles_w; ++tx) {
        const std::size_t tile =
            (zu(n) * zu(tiles_h) + zu(ty)) * zu(tiles_w) + zu(tx);
        for (std::size_t c = 0; c < in_c; ++c) {
          float d[6][6];
          for (int dy = 0; dy < 6; ++dy) {
            const int in_y = ty * 4 + dy - shape.padding;
            for (int dx = 0; dx < 6; ++dx) {
              const int in_x = tx * 4 + dx - shape.padding;
              const bool inside = in_y >= 0 && in_y < shape.in_height &&
                                  in_x >= 0 && in_x < shape.in_width;
              d[dy][dx] = inside ? input[in_base +
                                         (zu(in_y) * in_w + zu(in_x)) * in_c +
                                         c]
                                 : 0.0f;
            }
          }
          float bd[6][6];
          matmul_small(kBT, d, bd);
          float vt[6][6];
          matmul_small_rt(bd, kBT, vt);
          for (int pos = 0; pos < 36; ++pos) {
            v[zu(pos) * v_plane + tile * in_c + c] = vt[pos / 6][pos % 6];
          }
        }
      }
    }
  }

  // The 36 multiplies as one batched launch.
  const std::size_t m_plane = tiles * out_c;
  std::vector<float> m(kWinogradF4Multiplies * m_plane, 0.0f);
  launch(queue, config, v, u, m, mm, kWinogradF4Multiplies);

  // Output transform: Y = A^T m A (4x4 per tile), scattered with guards.
  const int oh = shape.out_height();
  const int ow = shape.out_width();
  for (int n = 0; n < shape.batch; ++n) {
    const std::size_t out_base = zu(n) * zu(oh) * zu(ow) * out_c;
    for (int ty = 0; ty < tiles_h; ++ty) {
      for (int tx = 0; tx < tiles_w; ++tx) {
        const std::size_t tile =
            (zu(n) * zu(tiles_h) + zu(ty)) * zu(tiles_w) + zu(tx);
        for (std::size_t f = 0; f < out_c; ++f) {
          float mt[6][6];
          for (int pos = 0; pos < 36; ++pos) {
            mt[pos / 6][pos % 6] = m[zu(pos) * m_plane + tile * out_c + f];
          }
          float am[4][6];
          matmul_small(kAT, mt, am);
          float y[4][4];
          matmul_small_rt(am, kAT, y);
          for (int dy = 0; dy < 4; ++dy) {
            const int out_y = ty * 4 + dy;
            if (out_y >= oh) continue;
            for (int dx = 0; dx < 4; ++dx) {
              const int out_x = tx * 4 + dx;
              if (out_x >= ow) continue;
              output[out_base + (zu(out_y) * zu(ow) + zu(out_x)) * out_c + f] =
                  y[dy][dx];
            }
          }
        }
      }
    }
  }
}

}  // namespace aks::conv
