#include "conv/winograd.hpp"

#include <vector>

#include "common/error.hpp"
#include "gemm/registry.hpp"

namespace aks::conv {

namespace {

/// Local widening cast for index arithmetic on validated dimensions.
inline std::size_t zu(int v) { return static_cast<std::size_t>(v); }

/// V = B^T d B for one 4x4 input tile (fully unrolled per the matrices in
/// the header comment).
void input_transform(const float d[4][4], float v[4][4]) {
  float t[4][4];  // B^T d
  for (int c = 0; c < 4; ++c) {
    t[0][c] = d[0][c] - d[2][c];
    t[1][c] = d[1][c] + d[2][c];
    t[2][c] = d[2][c] - d[1][c];
    t[3][c] = d[1][c] - d[3][c];
  }
  for (int r = 0; r < 4; ++r) {  // (B^T d) B
    v[r][0] = t[r][0] - t[r][2];
    v[r][1] = t[r][1] + t[r][2];
    v[r][2] = t[r][2] - t[r][1];
    v[r][3] = t[r][1] - t[r][3];
  }
}

/// U = G g G^T for one 3x3 filter.
void filter_transform(const float g[3][3], float u[4][4]) {
  float t[4][3];  // G g
  for (int c = 0; c < 3; ++c) {
    t[0][c] = g[0][c];
    t[1][c] = 0.5f * (g[0][c] + g[1][c] + g[2][c]);
    t[2][c] = 0.5f * (g[0][c] - g[1][c] + g[2][c]);
    t[3][c] = g[2][c];
  }
  for (int r = 0; r < 4; ++r) {  // (G g) G^T
    u[r][0] = t[r][0];
    u[r][1] = 0.5f * (t[r][0] + t[r][1] + t[r][2]);
    u[r][2] = 0.5f * (t[r][0] - t[r][1] + t[r][2]);
    u[r][3] = t[r][2];
  }
}

/// Y = A^T m A for one 4x4 element-product tile; writes a 2x2 output tile.
void output_transform(const float m[4][4], float y[2][2]) {
  float t[2][4];  // A^T m
  for (int c = 0; c < 4; ++c) {
    t[0][c] = m[0][c] + m[1][c] + m[2][c];
    t[1][c] = m[1][c] - m[2][c] - m[3][c];
  }
  for (int r = 0; r < 2; ++r) {  // (A^T m) A
    y[r][0] = t[r][0] + t[r][1] + t[r][2];
    y[r][1] = t[r][1] - t[r][2] - t[r][3];
  }
}

}  // namespace

bool winograd_applicable(const ConvShape& shape) {
  return shape.kernel == 3 && shape.stride == 1;
}

gemm::GemmShape winograd_gemm_shape(const ConvShape& shape) {
  const auto tiles_h = static_cast<std::size_t>((shape.out_height() + 1) / 2);
  const auto tiles_w = static_cast<std::size_t>((shape.out_width() + 1) / 2);
  gemm::GemmShape out;
  out.m = static_cast<std::size_t>(shape.batch) * tiles_h * tiles_w;
  out.k = static_cast<std::size_t>(shape.in_channels);
  out.n = static_cast<std::size_t>(shape.out_channels);
  return out;
}

void winograd_conv2d(syclrt::Queue& queue, const gemm::KernelConfig& config,
                     std::span<const float> input,
                     std::span<const float> filter, std::span<float> output,
                     const ConvShape& shape) {
  winograd_conv2d(queue, config, input, filter, output, shape,
                  [](syclrt::Queue& q, const gemm::KernelConfig& cfg,
                     std::span<const float> a, std::span<const float> b,
                     std::span<float> c, const gemm::GemmShape& s,
                     std::size_t batch) {
                    return gemm::launch_batched_gemm(q, cfg, a, b, c, s,
                                                     batch);
                  });
}

void winograd_conv2d(syclrt::Queue& queue, const gemm::KernelConfig& config,
                     std::span<const float> input,
                     std::span<const float> filter, std::span<float> output,
                     const ConvShape& shape,
                     const BatchedGemmLaunchFn& launch) {
  AKS_CHECK(winograd_applicable(shape),
            "Winograd F(2x2,3x3) requires a 3x3 stride-1 convolution");
  AKS_CHECK(input.size() == shape.input_size(), "input size mismatch");
  AKS_CHECK(filter.size() == shape.filter_size(), "filter size mismatch");
  AKS_CHECK(output.size() == shape.output_size(), "output size mismatch");

  const auto mm = winograd_gemm_shape(shape);
  const std::size_t tiles = mm.m;
  const auto in_c = static_cast<std::size_t>(shape.in_channels);
  const auto out_c = static_cast<std::size_t>(shape.out_channels);
  const int tiles_h = (shape.out_height() + 1) / 2;
  const int tiles_w = (shape.out_width() + 1) / 2;

  // --- Filter transform: U packed as [pos][c, f], pos = 4x4 transform
  // position, contiguous per pos so the multiplies run as one batched GEMM.
  const std::size_t u_plane = in_c * out_c;
  std::vector<float> u(kWinogradF2Multiplies * u_plane, 0.0f);
  for (std::size_t c = 0; c < in_c; ++c) {
    for (std::size_t f = 0; f < out_c; ++f) {
      float g[3][3];
      for (int ky = 0; ky < 3; ++ky)
        for (int kx = 0; kx < 3; ++kx)
          g[ky][kx] = filter[((zu(ky) * 3 + zu(kx)) * in_c + c) * out_c + f];
      float ut[4][4];
      filter_transform(g, ut);
      for (int pos = 0; pos < 16; ++pos) {
        u[zu(pos) * u_plane + c * out_c + f] = ut[pos / 4][pos % 4];
      }
    }
  }

  // --- Input transform: V packed as [pos][tile, c]. -----------------------
  const std::size_t v_plane = tiles * in_c;
  std::vector<float> v(kWinogradF2Multiplies * v_plane, 0.0f);
  const auto in_w = static_cast<std::size_t>(shape.in_width);
  for (int n = 0; n < shape.batch; ++n) {
    const std::size_t in_base =
        zu(n) * zu(shape.in_height) * zu(shape.in_width) * in_c;
    for (int ty = 0; ty < tiles_h; ++ty) {
      for (int tx = 0; tx < tiles_w; ++tx) {
        const std::size_t tile =
            (zu(n) * zu(tiles_h) + zu(ty)) * zu(tiles_w) + zu(tx);
        for (std::size_t c = 0; c < in_c; ++c) {
          float d[4][4];
          for (int dy = 0; dy < 4; ++dy) {
            const int in_y = ty * 2 + dy - shape.padding;
            for (int dx = 0; dx < 4; ++dx) {
              const int in_x = tx * 2 + dx - shape.padding;
              const bool inside = in_y >= 0 && in_y < shape.in_height &&
                                  in_x >= 0 && in_x < shape.in_width;
              d[dy][dx] =
                  inside ? input[in_base + (zu(in_y) * in_w + zu(in_x)) * in_c + c]
                         : 0.0f;
            }
          }
          float vt[4][4];
          input_transform(d, vt);
          for (int pos = 0; pos < 16; ++pos) {
            v[zu(pos) * v_plane + tile * in_c + c] = vt[pos / 4][pos % 4];
          }
        }
      }
    }
  }

  // --- The sixteen multiplies M[pos] = V[pos] * U[pos], as ONE batched
  // launch over the packed planes.
  const std::size_t m_plane = tiles * out_c;
  std::vector<float> m(kWinogradF2Multiplies * m_plane, 0.0f);
  launch(queue, config, v, u, m, mm, kWinogradF2Multiplies);

  // --- Output transform. ---------------------------------------------------
  const int oh = shape.out_height();
  const int ow = shape.out_width();
  for (int n = 0; n < shape.batch; ++n) {
    const std::size_t out_base = zu(n) * zu(oh) * zu(ow) * out_c;
    for (int ty = 0; ty < tiles_h; ++ty) {
      for (int tx = 0; tx < tiles_w; ++tx) {
        const std::size_t tile =
            (zu(n) * zu(tiles_h) + zu(ty)) * zu(tiles_w) + zu(tx);
        for (std::size_t f = 0; f < out_c; ++f) {
          float mt[4][4];
          for (int pos = 0; pos < 16; ++pos) {
            mt[pos / 4][pos % 4] = m[zu(pos) * m_plane + tile * out_c + f];
          }
          float y[2][2];
          output_transform(mt, y);
          for (int dy = 0; dy < 2; ++dy) {
            const int out_y = ty * 2 + dy;
            if (out_y >= oh) continue;
            for (int dx = 0; dx < 2; ++dx) {
              const int out_x = tx * 2 + dx;
              if (out_x >= ow) continue;
              output[out_base + (zu(out_y) * zu(ow) + zu(out_x)) * out_c + f] =
                  y[dy][dx];
            }
          }
        }
      }
    }
  }
}

}  // namespace aks::conv
