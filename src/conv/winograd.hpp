// Convolution as GEMM via the Winograd F(2x2, 3x3) transformation.
//
// For a dense 3x3 stride-1 convolution the Winograd algorithm lowers each
// batch of 2x2 output tiles to sixteen independent GEMMs of identical shape
// [tiles x in_c] * [in_c x out_c] — the second family of GEMM shapes the
// dataset layer extracts. Transform matrices (Lavin & Gray notation):
//
//   B^T = | 1  0 -1  0 |   G = | 1    0    0  |   A^T = | 1 1  1  0 |
//         | 0  1  1  0 |       | 1/2  1/2  1/2|         | 0 1 -1 -1 |
//         | 0 -1  1  0 |       | 1/2 -1/2  1/2|
//         | 0  1  0 -1 |       | 0    0    1  |
//
//   V = B^T d B (input tiles), U = G g G^T (filter), Y = A^T (U .* V) A.
#pragma once

#include <functional>
#include <span>

#include "conv/direct.hpp"
#include "gemm/config.hpp"
#include "gemm/shape.hpp"
#include "syclrt/queue.hpp"

namespace aks::conv {

/// Launch used for the batched transformed multiplies. The default
/// forwards to gemm::launch_batched_gemm; the checked execution mode
/// (src/check) injects a recording launcher (see conv/im2col.hpp).
using BatchedGemmLaunchFn = std::function<syclrt::Event(
    syclrt::Queue&, const gemm::KernelConfig&, std::span<const float>,
    std::span<const float>, std::span<float>, const gemm::GemmShape&,
    std::size_t)>;

/// Batch counts of the batched GEMM launches: one multiply per position of
/// the element-wise product, (tile+2)^2 positions for F(tile x tile, 3x3).
/// These are the `batch` values the symbolic access verifier quantifies the
/// batched-launch summaries over (see src/check/symbolic).
inline constexpr std::size_t kWinogradF2Multiplies = 16;  // 4x4 positions
inline constexpr std::size_t kWinogradF4Multiplies = 36;  // 6x6 positions

/// True when the Winograd path supports the convolution (3x3, stride 1).
[[nodiscard]] bool winograd_applicable(const ConvShape& shape);

/// Shape of each of the sixteen batched GEMMs (matches
/// data::winograd_shape).
[[nodiscard]] gemm::GemmShape winograd_gemm_shape(const ConvShape& shape);

/// Runs the convolution via Winograd F(2x2, 3x3), executing the sixteen
/// multiplies with the tiled GEMM kernel `config`. Output layout matches
/// direct_conv2d. Throws when the shape is not applicable.
void winograd_conv2d(syclrt::Queue& queue, const gemm::KernelConfig& config,
                     std::span<const float> input,
                     std::span<const float> filter, std::span<float> output,
                     const ConvShape& shape);

/// As above with an injected batched GEMM launch.
void winograd_conv2d(syclrt::Queue& queue, const gemm::KernelConfig& config,
                     std::span<const float> input,
                     std::span<const float> filter, std::span<float> output,
                     const ConvShape& shape,
                     const BatchedGemmLaunchFn& launch);

// --- F(4x4, 3x3) extension -------------------------------------------------
// Larger output tiles (4x4 from 6x6 input tiles, 36 multiplies) cut the
// multiply count by up to 4x at the price of more transform work and less
// numerical headroom. Not part of the paper's dataset; the ConvEngine
// considers it as a third lowering.

/// Shape of each of the thirty-six F(4x4,3x3) multiplies:
/// M = batch * ceil(out_h/4) * ceil(out_w/4), K = in_c, N = out_c.
[[nodiscard]] gemm::GemmShape winograd4_gemm_shape(const ConvShape& shape);

/// Runs the convolution via Winograd F(4x4, 3x3) (same applicability rules
/// as F(2x2, 3x3): dense 3x3, stride 1).
void winograd4_conv2d(syclrt::Queue& queue, const gemm::KernelConfig& config,
                      std::span<const float> input,
                      std::span<const float> filter, std::span<float> output,
                      const ConvShape& shape);

/// As above with an injected batched GEMM launch.
void winograd4_conv2d(syclrt::Queue& queue, const gemm::KernelConfig& config,
                      std::span<const float> input,
                      std::span<const float> filter, std::span<float> output,
                      const ConvShape& shape,
                      const BatchedGemmLaunchFn& launch);

}  // namespace aks::conv
