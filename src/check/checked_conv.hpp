// Checked execution of the convolution lowerings.
//
// The conv module lowers every convolution to the tiled GEMM family
// (im2col: one multiply; Winograd F(2x2)/F(4x4): 16/36 batched multiplies).
// These entry points run the *production* lowering code with the GEMM
// launch swapped for a recording one (via the conv module's launcher
// injection hooks), so the patch/transform bookkeeping and the kernels are
// analysed together, and verify the result against direct_conv2d.
#pragma once

#include <vector>

#include "check/checked_gemm.hpp"
#include "conv/direct.hpp"
#include "gemm/config.hpp"

namespace aks::check {

/// im2col + checked tiled GEMM vs direct_conv2d.
[[nodiscard]] CheckResult check_im2col_conv(const gemm::KernelConfig& config,
                                            const conv::ConvShape& shape);

/// Winograd F(2x2,3x3) with the checked batched GEMM vs direct_conv2d.
[[nodiscard]] CheckResult check_winograd_conv(const gemm::KernelConfig& config,
                                              const conv::ConvShape& shape);

/// Winograd F(4x4,3x3) with the checked batched GEMM vs direct_conv2d.
[[nodiscard]] CheckResult check_winograd4_conv(
    const gemm::KernelConfig& config, const conv::ConvShape& shape);

/// Conv shapes exercising padding, stride and ragged output tiles.
[[nodiscard]] std::vector<conv::ConvShape> default_conv_corpus();

/// Sweeps a spread of configurations across the conv corpus through all
/// three lowerings (Winograd only where applicable).
[[nodiscard]] RegistryCheckSummary check_conv_lowerings(
    std::size_t config_stride = 80);

}  // namespace aks::check
