// Checked execution pass: replays GEMM kernels over recording accessors.
//
// Every compiled instantiation of the tiled kernel family is re-instantiated
// here over `CheckedAccessor`s — the exact same kernel bodies the shipping
// registry launches, compiled against shadow-recording memory — and replayed
// deterministically (single-threaded, canonical group order) on synthetic
// operands. The pass reports:
//
//   * memory-safety findings (out-of-bounds, unguarded tail accesses,
//     cross-work-group races) via the AccessMonitor, and
//   * numerical divergence from the scalar reference GEMM, which would break
//     the paper's premise that all 640 configurations are interchangeable.
//
// This is what makes the "functionally interchangeable" claim mechanical:
// `check_registry` sweeps all configurations across a shape corpus chosen to
// exercise interior tiles, ragged edges in every dimension and K remainders,
// and the akscheck CLI gates CI on the result.
#pragma once

#include <cstddef>
#include <vector>

#include "check/checked_buffer.hpp"
#include "check/diagnostics.hpp"
#include "gemm/config.hpp"
#include "gemm/shape.hpp"
#include "syclrt/queue.hpp"

namespace aks::check {

/// Launches the checked instantiation matching `config` (same launch
/// geometry as the shipping registry). The queue should be in
/// deterministic replay mode; throws for an unknown compile-time triple.
syclrt::Event launch_checked_gemm(syclrt::Queue& queue,
                                  const gemm::KernelConfig& config,
                                  CheckedAccessor<const float> a,
                                  CheckedAccessor<const float> b,
                                  CheckedAccessor<float> c,
                                  const gemm::GemmShape& shape);

/// Batched counterpart (one launch over `batch` packed multiplies).
syclrt::Event launch_checked_batched_gemm(syclrt::Queue& queue,
                                          const gemm::KernelConfig& config,
                                          CheckedAccessor<const float> a,
                                          CheckedAccessor<const float> b,
                                          CheckedAccessor<float> c,
                                          const gemm::GemmShape& shape,
                                          std::size_t batch);

/// Result of one checked launch (or an aggregate of many).
struct CheckResult {
  std::vector<Diagnostic> findings;
  /// Findings beyond the monitor cap (0 unless a kernel is pathological).
  std::size_t dropped_findings = 0;
  /// Largest |kernel - reference| over all output elements.
  double max_abs_error = 0.0;
  /// True when no findings and the numerics match the reference.
  [[nodiscard]] bool clean() const {
    return findings.empty() && dropped_findings == 0 && numerics_ok;
  }
  bool numerics_ok = true;
};

/// Replays one configuration on one shape with checked accessors and
/// verifies the output against reference_gemm. Operands are seeded
/// deterministically from (config, shape).
[[nodiscard]] CheckResult check_gemm(const gemm::KernelConfig& config,
                                     const gemm::GemmShape& shape);

/// Same for the batched kernel (`batch` packed multiplies, one launch).
[[nodiscard]] CheckResult check_batched_gemm(const gemm::KernelConfig& config,
                                             const gemm::GemmShape& shape,
                                             std::size_t batch);

/// Same for the hierarchical (work-group cooperative) kernel, Tile = 8.
[[nodiscard]] CheckResult check_hierarchical_gemm(const gemm::GemmShape& shape);

/// Shapes exercising interior tiles, ragged M/N edges, K remainders for
/// every acc_size, and degenerate single-row/column cases.
[[nodiscard]] std::vector<gemm::GemmShape> default_shape_corpus();

struct RegistryCheckOptions {
  /// Shapes to sweep; empty means default_shape_corpus().
  std::vector<gemm::GemmShape> shapes;
  /// Check only the first N configurations (0 = all 640).
  std::size_t max_configs = 0;
  /// Also replay the batched kernel for each compiled instantiation.
  bool include_batched = true;
  /// Also replay the hierarchical kernel over the corpus.
  bool include_hierarchical = true;
};

struct RegistryCheckSummary {
  std::size_t configs_checked = 0;
  std::size_t launches = 0;
  std::size_t dropped_findings = 0;
  double max_abs_error = 0.0;
  std::vector<Diagnostic> findings;
  [[nodiscard]] bool clean() const {
    return findings.empty() && dropped_findings == 0;
  }
};

/// Sweeps the kernel zoo (registry configurations x shape corpus) through
/// the checked execution mode. Numerical divergence beyond tolerance is
/// folded into `findings` so one flag gates everything.
[[nodiscard]] RegistryCheckSummary check_registry(
    const RegistryCheckOptions& options = {});

}  // namespace aks::check
