#include "check/report_json.hpp"

#include <fstream>
#include <sstream>

#include "common/error.hpp"

namespace aks::check {

namespace {

constexpr std::string_view kSchemaVersion = "aks-static-1";

void append_kv(std::ostringstream& os, std::string_view key,
               std::string_view value, bool trailing_comma = true) {
  os << "\"" << key << "\": \"" << json_escape(value) << "\"";
  if (trailing_comma) os << ", ";
}

std::string_view level_of(symbolic::Verdict verdict) {
  switch (verdict) {
    case symbolic::Verdict::safe: return "note";
    case symbolic::Verdict::unknown: return "warning";
    case symbolic::Verdict::unsafe: return "error";
  }
  return "error";
}

void open_run(std::ostringstream& os, std::string_view tool) {
  os << "{\n  \"version\": \"" << kSchemaVersion << "\",\n"
     << "  \"tool\": \"" << tool << "\",\n";
}

}  // namespace

std::string json_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          std::ostringstream os;
          os << "\\u00" << std::hex << (c < 16 ? "0" : "")
             << static_cast<int>(c);
          out += os.str();
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string to_json(const LintReport& report) {
  std::ostringstream os;
  open_run(os, "akscheck-lint");
  os << "  \"configs_checked\": " << report.configs_checked << ",\n"
     << "  \"devices_checked\": " << report.devices_checked << ",\n"
     << "  \"results\": [";
  for (std::size_t i = 0; i < report.findings.size(); ++i) {
    const LintFinding& finding = report.findings[i];
    os << (i == 0 ? "\n" : ",\n") << "    {";
    append_kv(os, "ruleId", to_string(finding.rule));
    append_kv(os, "level", "error");
    os << "\"configIndex\": " << finding.config_index << ", ";
    append_kv(os, "config", finding.config);
    append_kv(os, "device", finding.device);
    append_kv(os, "message", finding.message, /*trailing_comma=*/false);
    os << "}";
  }
  os << (report.findings.empty() ? "]\n" : "\n  ]\n") << "}";
  return os.str();
}

std::string to_json(const symbolic::CertifyReport& report) {
  std::ostringstream os;
  open_run(os, "akscheck-certify");
  os << "  \"configs_checked\": " << report.configs_checked << ",\n"
     << "  \"devices_checked\": " << report.devices_checked << ",\n"
     << "  \"safe\": " << report.count(symbolic::Verdict::safe) << ",\n"
     << "  \"unsafe\": " << report.count(symbolic::Verdict::unsafe) << ",\n"
     << "  \"unknown\": " << report.count(symbolic::Verdict::unknown) << ",\n"
     << "  \"results\": [";
  for (std::size_t i = 0; i < report.certificates.size(); ++i) {
    const symbolic::Certificate& cert = report.certificates[i];
    os << (i == 0 ? "\n" : ",\n") << "    {";
    append_kv(os, "ruleId",
              cert.rule.empty() ? std::string_view("certified-safe")
                                : std::string_view(cert.rule));
    append_kv(os, "level", level_of(cert.verdict));
    append_kv(os, "verdict", symbolic::to_string(cert.verdict));
    os << "\"configIndex\": " << cert.config_index << ", ";
    append_kv(os, "config", cert.config);
    append_kv(os, "device", cert.device);
    if (cert.verdict == symbolic::Verdict::safe) {
      append_kv(os, "shapePrecondition", cert.precondition);
    } else if (cert.verdict == symbolic::Verdict::unsafe) {
      append_kv(os, "counterexample", cert.witness.to_string());
    } else {
      os << "\"replayClean\": " << (cert.replay_clean ? "true" : "false")
         << ", ";
    }
    append_kv(os, "message", cert.message, /*trailing_comma=*/false);
    os << "}";
  }
  os << (report.certificates.empty() ? "]\n" : "\n  ]\n") << "}";
  return os.str();
}

void save_json(const std::filesystem::path& path, const std::string& json) {
  std::ofstream out(path);
  AKS_CHECK(out.good(), "cannot open '" << path.string() << "' for writing");
  out << json << "\n";
  AKS_CHECK(out.good(), "failed writing '" << path.string() << "'");
}

}  // namespace aks::check
