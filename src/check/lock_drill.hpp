// Lock-order drill: exercises every locked module of the serving stack in
// one process so the lockdep registry observes the system's real lock
// graph, then captures it for validation.
//
// The drill is the dynamic half of the concurrency contract (the static
// half is the Clang thread-safety annotations in common/sync.hpp). It
// builds the full production stack — thread pool, online tuner, selection
// service with fallback, persistent store over a temp journal, trace
// session, a (zero-probability) fault plan so the injector's plan lock is
// exercised — and drives it from several threads mixing select(),
// select_batch(), select_async(), store flush/compaction and provisional
// refresh. Because lockdep edges are a function of code paths, not
// schedules, the resulting graph is deterministic; `akscheck locks` fails
// when it contains a cycle or a lock held across a condition wait that the
// ordering ranks in DESIGN.md do not sanction.
#pragma once

#include <cstddef>

#include "check/lockdep.hpp"

namespace aks::check {

struct LockDrillOptions {
  /// Worker threads issuing requests concurrently.
  std::size_t threads = 8;
  /// Requests per thread (split across the entry points).
  std::size_t requests_per_thread = 64;
  /// Distinct GEMM shapes in the request mix; collisions across threads
  /// exercise single-flight coalescing (serve.entry under serve.shard).
  std::size_t shapes = 24;
  /// Run under an active TraceSession so the trace locks join the graph.
  bool trace = true;
};

/// Runs the drill and returns the captured lock-order report. Resets the
/// lockdep registry first so the report covers exactly this drill plus
/// whatever the process already registered. The temp journal is removed
/// on exit.
[[nodiscard]] lockdep::Report run_lock_drill(const LockDrillOptions& options = {});

}  // namespace aks::check
