// SARIF-ish JSON serialisation of the static-analysis reports.
//
// CI dashboards and editor integrations consume static-analysis results as
// JSON; this module renders the lint and certify reports in a small
// SARIF-inspired schema (one "run" with the tool name and a flat "results"
// array; each result carries ruleId, level, the config and device it
// applies to, the shape precondition or counterexample, and a message).
// The schema is deliberately minimal — no external JSON dependency exists
// in this repo, so the writer below emits the subset it needs with correct
// string escaping.
//
//   level mapping:  SAFE -> "note", UNKNOWN -> "warning",
//                   UNSAFE / lint finding -> "error".
#pragma once

#include <filesystem>
#include <string>

#include "check/config_lint.hpp"
#include "check/symbolic/certificate.hpp"

namespace aks::check {

/// Escapes a string for inclusion in a JSON string literal (quotes,
/// backslashes, control characters).
[[nodiscard]] std::string json_escape(std::string_view text);

/// Renders a lint report: every finding becomes an "error" result.
[[nodiscard]] std::string to_json(const LintReport& report);

/// Renders a certify report: one result per certificate, level by verdict.
[[nodiscard]] std::string to_json(const symbolic::CertifyReport& report);

/// Writes `json` to `path` (trailing newline added).
void save_json(const std::filesystem::path& path, const std::string& json);

}  // namespace aks::check
