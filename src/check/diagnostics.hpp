// Diagnostic vocabulary of the akscheck analysis passes.
//
// Every finding — from the checked execution mode or the static config
// lint — is one `Diagnostic` carrying a machine-matchable class plus the
// attribution needed to reproduce it: kernel/config name, buffer label,
// element index and the work-group(s) involved. The CLI, the CI gate and
// the negative tests all key off `Diagnostic::kind`, so the classes are the
// stable contract of the subsystem.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace aks::check {

/// Sentinel for "no work-group" in diagnostic attribution.
inline constexpr std::size_t kNoGroup = static_cast<std::size_t>(-1);

enum class DiagnosticKind {
  /// A kernel accessed an element outside its buffer.
  out_of_bounds,
  /// A work-item outside the logical global range touched memory without
  /// first consulting NdItem::in_range() (missing tail guard).
  tail_unguarded,
  /// Two different work-groups wrote the same element.
  write_write_race,
  /// One work-group read an element another work-group wrote.
  read_write_race,
  /// A (config, device) pair rejected by the static config lint.
  invalid_config,
  /// Kernel output diverged from the scalar reference beyond tolerance.
  numeric_divergence,
};

[[nodiscard]] constexpr std::string_view to_string(DiagnosticKind kind) {
  switch (kind) {
    case DiagnosticKind::out_of_bounds: return "out-of-bounds";
    case DiagnosticKind::tail_unguarded: return "tail-unguarded";
    case DiagnosticKind::write_write_race: return "write-write-race";
    case DiagnosticKind::read_write_race: return "read-write-race";
    case DiagnosticKind::invalid_config: return "invalid-config";
    case DiagnosticKind::numeric_divergence: return "numeric-divergence";
  }
  return "unknown";
}

struct Diagnostic {
  DiagnosticKind kind = DiagnosticKind::out_of_bounds;
  /// Kernel or configuration under analysis (e.g. "t4x2_a8_wg16x8").
  std::string kernel;
  /// Label of the buffer involved ("A", "B", "C"); empty for lint findings.
  std::string buffer;
  /// Element index within the buffer (buffer-global, not view-relative).
  std::size_t index = 0;
  /// Work-groups involved: for races, the two conflicting groups; for
  /// access findings, group_b is the accessing group.
  std::size_t group_a = kNoGroup;
  std::size_t group_b = kNoGroup;
  /// Human-readable explanation.
  std::string message;

  /// One-line rendering for reports and test failure output.
  [[nodiscard]] std::string format() const;
};

/// Collects diagnostics for one checked launch.
///
/// Deduplicates per (kind, buffer, index) so a bug touching a whole tile
/// produces one finding per element at most, and caps the stored findings
/// (`dropped()` counts the overflow) so a pathological kernel cannot OOM
/// the checker. The kernel label is stamped onto findings as they arrive.
class AccessMonitor {
 public:
  explicit AccessMonitor(std::string kernel_label, std::size_t max_findings = 256)
      : kernel_(std::move(kernel_label)), max_findings_(max_findings) {}

  /// Records a finding (fills in the kernel label). Returns true when the
  /// finding was stored, false when deduplicated or dropped by the cap.
  bool report(Diagnostic diagnostic);

  [[nodiscard]] const std::vector<Diagnostic>& findings() const {
    return findings_;
  }
  [[nodiscard]] bool clean() const { return findings_.empty() && dropped_ == 0; }
  [[nodiscard]] std::size_t dropped() const { return dropped_; }
  [[nodiscard]] const std::string& kernel_label() const { return kernel_; }

  /// Re-labels the monitor for the next launch without clearing findings.
  void set_kernel_label(std::string label) { kernel_ = std::move(label); }

 private:
  std::string kernel_;
  std::size_t max_findings_;
  std::size_t dropped_ = 0;
  std::vector<Diagnostic> findings_;
};

}  // namespace aks::check
