// Interval + congruence shape domain and its inequality prover.
//
// A `ShapeDomain` constrains each symbol with a conjunction of affine lower
// and upper bounds (the interval part, bounds may reference symbols that
// are eliminated later) plus one congruence `s ≡ r (mod m)` (the congruence
// part — tile origins are pitch-aligned, and preconditions like
// `K ≡ 0 (mod acc_size)` live here too).
//
// `prove_nonneg` decides `e ≥ 0 for all points of the domain` by bound
// substitution along the fixed elimination order of `Sym`: a symbol with a
// positive coefficient is replaced by one of its lower bounds, a negative
// coefficient by one of its upper bounds (congruence-aligned when the bound
// is constant), recursing until the expression is constant. Substituting
// any valid bound is sound, so the prover branches over the bound lists and
// succeeds if any branch reaches a non-negative constant.
//
// The procedure is *sound but not complete*: a `false` answer means
// "unproved", not "violated". The verifier treats unproved obligations as
// candidates for concrete witness search (verifier.hpp), never as verdicts
// — exactly the SAFE / UNSAFE / UNKNOWN escalation contract.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "check/symbolic/affine.hpp"

namespace aks::check::symbolic {

/// Constraints attached to one symbol.
struct SymConstraint {
  bool active = false;
  /// `s >= b` for every b. Bounds may reference later-eliminated symbols.
  std::vector<AffineExpr> lower;
  /// `s <= b` for every b; empty means unbounded above.
  std::vector<AffineExpr> upper;
  /// `s ≡ residue (mod modulus)`; modulus 1 = no congruence.
  std::int64_t modulus = 1;
  std::int64_t residue = 0;
};

class ShapeDomain {
 public:
  /// Activates `s` with bounds [lo, +inf).
  void add_symbol(Sym s, std::int64_t lo);
  /// Activates `s` with bounds [lo, hi].
  void add_symbol(Sym s, std::int64_t lo, const AffineExpr& hi);

  void add_lower(Sym s, const AffineExpr& bound);
  void add_upper(Sym s, const AffineExpr& bound);
  /// Installs `s ≡ residue (mod modulus)`; combining congruences takes the
  /// larger modulus when one divides the other (the common case here) and
  /// keeps the existing one otherwise — always a sound relaxation.
  void add_congruence(Sym s, std::int64_t modulus, std::int64_t residue);

  [[nodiscard]] const SymConstraint& constraint(Sym s) const {
    return constraints_[sym_index(s)];
  }
  [[nodiscard]] bool is_active(Sym s) const { return constraint(s).active; }

  /// Folds an affine inequality `expr >= 0` into per-symbol bounds when it
  /// isolates exactly one tile-origin symbol with coefficient ±1 (the shape
  /// of every region precondition the summary generators emit). Returns
  /// false when the constraint has no such form — the caller then keeps it
  /// for concrete evaluation only, which is a sound over-approximation.
  bool absorb_constraint(const AffineExpr& nonneg);

  /// True when `point` satisfies every active bound and congruence.
  [[nodiscard]] bool contains(const Point& point) const;

 private:
  std::array<SymConstraint, kNumSymbols> constraints_{};
};

/// Sound one-sided decision: true means `expr >= 0` over the whole domain.
/// Expressions mentioning inactive symbols are never proved.
[[nodiscard]] bool prove_nonneg(const AffineExpr& expr,
                                const ShapeDomain& domain);

}  // namespace aks::check::symbolic
