// Affine index expressions over the shape-symbolic vocabulary.
//
// The symbolic access verifier reasons about kernel index arithmetic as
// affine expressions `c0 + Σ ci·Si` over a fixed symbol set: the GEMM shape
// (M, K, N), the batch count of a batched launch, and the per-work-item tile
// origins the launch schedule assigns (Row0, Col0, BatchIdx). Keeping the
// symbol set closed lets expressions live in a fixed-size coefficient array
// — no allocation, O(1) arithmetic — which matters because the prover in
// domain.hpp evaluates thousands of these per configuration.
//
// The deliberate restriction to *affine* forms is what makes verification
// decidable here: products of symbols (buffer sizes like M·K) never appear
// as expressions; buffers are modelled two-dimensionally (rows x cols) so
// every obligation stays linear. See access_summary.hpp.
#pragma once

#include <array>
#include <cstdint>
#include <string>

namespace aks::check::symbolic {

/// The closed symbol vocabulary. Order encodes the prover's elimination
/// order: tile-origin symbols first (their bounds may reference shape
/// symbols), then batch, then the shape symbols (constant bounds only).
enum class Sym : int {
  row0 = 0,   ///< Row origin of the work-item's output tile.
  col0 = 1,   ///< Column origin of the work-item's output tile.
  batch_idx = 2,  ///< Batch-entry index of a batched launch.
  batch = 3,  ///< Number of batch entries.
  m = 4,
  k = 5,
  n = 6,
};

inline constexpr int kNumSymbols = 7;

/// Array index of a symbol (the enum values are dense from 0).
[[nodiscard]] constexpr std::size_t sym_index(Sym s) {
  return static_cast<std::size_t>(s);
}

[[nodiscard]] std::string_view to_string(Sym sym);

/// A concrete assignment of every symbol.
using Point = std::array<std::int64_t, kNumSymbols>;

/// `constant + Σ coeff[s]·s` with 64-bit integer coefficients. The shapes
/// and tile parameters this repo handles are far below 2^31, so ordinary
/// int64 arithmetic cannot overflow in practice; expressions are small and
/// value-semantic.
class AffineExpr {
 public:
  constexpr AffineExpr() = default;

  [[nodiscard]] static AffineExpr constant(std::int64_t value) {
    AffineExpr e;
    e.constant_ = value;
    return e;
  }
  [[nodiscard]] static AffineExpr sym(Sym s, std::int64_t coeff = 1) {
    AffineExpr e;
    e.coeffs_[sym_index(s)] = coeff;
    return e;
  }

  [[nodiscard]] std::int64_t constant_term() const { return constant_; }
  [[nodiscard]] std::int64_t coeff(Sym s) const {
    return coeffs_[sym_index(s)];
  }
  [[nodiscard]] bool is_constant() const;
  /// True when only `s` (and the constant) appears.
  [[nodiscard]] bool depends_on(Sym s) const { return coeff(s) != 0; }

  [[nodiscard]] AffineExpr operator+(const AffineExpr& rhs) const;
  [[nodiscard]] AffineExpr operator-(const AffineExpr& rhs) const;
  [[nodiscard]] AffineExpr operator*(std::int64_t scale) const;
  [[nodiscard]] AffineExpr operator+(std::int64_t c) const {
    return *this + constant(c);
  }
  [[nodiscard]] AffineExpr operator-(std::int64_t c) const {
    return *this - constant(c);
  }
  [[nodiscard]] bool operator==(const AffineExpr&) const = default;

  /// Replaces `s` with `replacement` (multiplied by s's coefficient).
  [[nodiscard]] AffineExpr substitute(Sym s, const AffineExpr& replacement) const;

  [[nodiscard]] std::int64_t eval(const Point& point) const;

  /// Rendering like "M - Row0 - 8"; "0" for the zero expression.
  [[nodiscard]] std::string to_string() const;

 private:
  std::int64_t constant_ = 0;
  std::array<std::int64_t, kNumSymbols> coeffs_{};
};

/// Shorthand builders used throughout the summary generators.
[[nodiscard]] inline AffineExpr sym_m() { return AffineExpr::sym(Sym::m); }
[[nodiscard]] inline AffineExpr sym_k() { return AffineExpr::sym(Sym::k); }
[[nodiscard]] inline AffineExpr sym_n() { return AffineExpr::sym(Sym::n); }
[[nodiscard]] inline AffineExpr sym_row0() { return AffineExpr::sym(Sym::row0); }
[[nodiscard]] inline AffineExpr sym_col0() { return AffineExpr::sym(Sym::col0); }

}  // namespace aks::check::symbolic
