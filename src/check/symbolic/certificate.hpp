// Safety certificates for the configuration space.
//
// `certify_space` sweeps configs x devices through the symbolic verifier:
// per configuration it verifies the tiled and batched access summaries
// (shape-symbolic, device-independent) and per device it adds the concrete
// capacity checks. Each (config, device) pair gets one `Certificate`:
//
//   SAFE     — carries the shape precondition the verdict quantifies over
//              ("for all M, K, N >= 1 ...");
//   UNSAFE   — carries the violated rule and a concrete counterexample
//              shape;
//   UNKNOWN  — unproved and unrefuted; the verifier's replay candidates
//              are escalated through the dynamic checked replay
//              (checked_gemm.hpp) and the outcome recorded.
//
// The report round-trips as CSV (same conventions as check::LintReport),
// exports SARIF-ish JSON via report_json.hpp, and collapses to a
// per-config safety mask that `select::CertifiedPruner` consumes.
//
// `differential_check` is the trust-but-verify mode: it cross-checks
// symbolic verdicts against sampled dynamic replays — SAFE configs must
// replay clean over the shape corpus, UNSAFE access verdicts must fail
// replay on their counterexample shape, UNSAFE capacity verdicts must
// agree with the config lint, and any UNKNOWN is itself a mismatch.
#pragma once

#include <filesystem>
#include <span>
#include <string>
#include <vector>

#include "check/symbolic/verifier.hpp"
#include "gemm/config.hpp"
#include "perfmodel/device_spec.hpp"

namespace aks::check::symbolic {

struct CertifyOptions {
  /// Certify only the first N configurations (0 = all).
  std::size_t max_configs = 0;
  /// Also verify the batched-launch summary per configuration.
  bool include_batched = true;
  /// Replay UNKNOWN verdicts' candidate shapes through checked replay.
  bool escalate_unknown = true;
};

struct Certificate {
  std::size_t config_index = 0;
  std::string config;  ///< KernelConfig::name()
  std::string device;  ///< DeviceSpec::name
  Verdict verdict = Verdict::safe;
  /// Violated rule id for UNSAFE/UNKNOWN (e.g. "symbolic-oob"); empty for
  /// SAFE.
  std::string rule;
  /// SAFE: the shape precondition the certificate quantifies over.
  std::string precondition;
  std::string message;
  /// UNSAFE: the concrete counterexample shape.
  WitnessShape witness;
  /// UNKNOWN escalation outcome: whether the replayed candidate shapes
  /// came back clean. True (vacuously) for SAFE/UNSAFE.
  bool replay_clean = true;
};

struct CertifyReport {
  std::size_t configs_checked = 0;
  std::size_t devices_checked = 0;
  std::vector<Certificate> certificates;  ///< one per (config, device)

  [[nodiscard]] std::size_t count(Verdict verdict) const;
  [[nodiscard]] bool all_safe() const {
    return count(Verdict::safe) == certificates.size();
  }

  /// Per-config safety over `num_configs` configs: false when the config
  /// is not SAFE on `device` (or on any device when `device` is empty).
  [[nodiscard]] std::vector<bool> safe_mask(
      std::size_t num_configs, const std::string& device = {}) const;

  /// CSV round-trip (config_index,config,device,verdict,rule,precondition,
  /// witness,replay_clean,message).
  void save_csv(const std::filesystem::path& path) const;
  [[nodiscard]] static CertifyReport load_csv(
      const std::filesystem::path& path);
};

/// Sweeps `configs` x `devices`. Pass `gemm::enumerate_configs()` and
/// `perf::DeviceSpec::shipped()` for the standard 640 x 3 space.
[[nodiscard]] CertifyReport certify_space(
    std::span<const gemm::KernelConfig> configs,
    std::span<const perf::DeviceSpec> devices, const CertifyOptions& = {});

struct DifferentialMismatch {
  std::size_t config_index = 0;
  std::string config;
  std::string device;
  std::string detail;
};

struct DifferentialResult {
  std::size_t configs_sampled = 0;
  std::size_t replays = 0;
  std::vector<DifferentialMismatch> mismatches;
  [[nodiscard]] bool clean() const { return mismatches.empty(); }
};

/// Cross-checks `report` against dynamic replays of `samples` evenly-spaced
/// configurations (0 = every certified configuration).
[[nodiscard]] DifferentialResult differential_check(
    const CertifyReport& report, std::span<const gemm::KernelConfig> configs,
    std::span<const perf::DeviceSpec> devices, std::size_t samples = 0);

}  // namespace aks::check::symbolic
