#include "check/symbolic/access_summary.hpp"

#include <algorithm>

namespace aks::check::symbolic {

std::pair<std::int64_t, std::int64_t> Extent::eval(const Point& point) const {
  const std::int64_t b = begin.eval(point);
  std::int64_t e = b;  // empty candidate list = empty range
  bool first = true;
  for (const AffineExpr& cand : end) {
    const std::int64_t v = cand.eval(point);
    e = first ? v : std::min(e, v);
    first = false;
  }
  return {b, e};
}

const BufferModel* AccessSummary::find_buffer(const std::string& name) const {
  for (const auto& buffer : buffers) {
    if (buffer.name == name) return &buffer;
  }
  return nullptr;
}

AccessSummary summarize_tiled_gemm(const gemm::KernelAccessPattern& pattern) {
  AccessSummary s;
  s.kernel = "TiledGemmKernel";
  s.schedule = {
      {.origin = Sym::row0,
       .extent = sym_m(),
       .pitch = pattern.row_tile,
       .wg = pattern.wg_rows,
       .guarded = pattern.shape_guarded},
      {.origin = Sym::col0,
       .extent = sym_n(),
       .pitch = pattern.col_tile,
       .wg = pattern.wg_cols,
       .guarded = pattern.shape_guarded},
  };
  s.buffers = {
      {.name = "A", .rows = sym_m(), .cols = sym_k()},
      {.name = "B", .rows = sym_k(), .cols = sym_n()},
      {.name = "C", .rows = sym_m(), .cols = sym_n()},
  };

  // Row range of the item's tile: [Row0, Row0+RT), clamped to M by the edge
  // path's min(); the interior path's precondition Row0+RT <= M makes the
  // clamped form the exact union of both paths.
  Extent tile_rows = Extent::range(sym_row0(), sym_row0() + pattern.row_tile);
  if (pattern.edge_clamped) tile_rows.end.push_back(sym_m());
  Extent tile_cols = Extent::range(sym_col0(), sym_col0() + pattern.col_tile);
  if (pattern.edge_clamped) tile_cols.end.push_back(sym_n());

  // K range of the staging loads: [0, K) when the final accumulator step is
  // clamped; an unclamped AccSize step overruns to at most K + AS - 2.
  const AffineExpr k_end = pattern.k_tail_clamped
                               ? sym_k()
                               : sym_k() + (pattern.acc_size - 1);
  const Extent k_span = Extent::range(AffineExpr::constant(0), k_end);

  s.regions = {
      {.buffer = "A", .is_write = false, .rows = tile_rows, .cols = k_span,
       .preconditions = {}},
      {.buffer = "B", .is_write = false, .rows = k_span, .cols = tile_cols,
       .preconditions = {}},
      {.buffer = "C", .is_write = true, .rows = tile_rows, .cols = tile_cols,
       .preconditions = {}},
  };
  if (pattern.reads_output) {
    s.regions.push_back(
        {.buffer = "C", .is_write = false, .rows = tile_rows,
         .cols = tile_cols, .preconditions = {}});
  }

  s.local_memory_bytes = pattern.local_memory_bytes;
  s.work_group_size = pattern.work_group_size();
  // A staging loads acc_size-wide K segments; B staging and the C store
  // address col_tile contiguous columns.
  s.staged_vector_widths = {pattern.acc_size, pattern.col_tile};
  return s;
}

AccessSummary summarize_batched_tiled_gemm(
    const gemm::KernelAccessPattern& pattern) {
  AccessSummary s = summarize_tiled_gemm(pattern);
  s.kernel = "BatchedTiledGemmKernel";
  s.batched = true;
  // Each batch entry computes on an exact subspan partition of the packed
  // buffers; all regions are slice-relative.
  for (auto& buffer : s.buffers) buffer.batch_sliced = true;
  return s;
}

AccessSummary summarize_hierarchical_gemm(int tile) {
  AccessSummary s;
  s.kernel = "HierarchicalGemm";
  // Each item owns a single output element; the Tile x Tile work-group is
  // the scheduling unit, so the per-item pitch is 1 with wg = Tile.
  s.schedule = {
      {.origin = Sym::row0,
       .extent = sym_m(),
       .pitch = 1,
       .wg = tile,
       .guarded = true},
      {.origin = Sym::col0,
       .extent = sym_n(),
       .pitch = 1,
       .wg = tile,
       .guarded = true},
  };
  s.buffers = {
      {.name = "A", .rows = sym_m(), .cols = sym_k()},
      {.name = "B", .rows = sym_k(), .cols = sym_n()},
      {.name = "C", .rows = sym_m(), .cols = sym_n()},
  };
  const Extent row = Extent::range(sym_row0(), sym_row0() + 1);
  const Extent col = Extent::range(sym_col0(), sym_col0() + 1);
  const Extent k_span = Extent::range(AffineExpr::constant(0), sym_k());
  s.regions = {
      {.buffer = "A", .is_write = false, .rows = row, .cols = k_span,
       .preconditions = {}},
      {.buffer = "B", .is_write = false, .rows = k_span, .cols = col,
       .preconditions = {}},
      {.buffer = "C", .is_write = true, .rows = row, .cols = col,
       .preconditions = {}},
  };
  const auto pattern = gemm::hierarchical_access_pattern(tile);
  s.local_memory_bytes = pattern.local_memory_bytes;
  s.work_group_size = pattern.work_group_size();
  return s;
}

}  // namespace aks::check::symbolic
