#include "check/symbolic/affine.hpp"

#include <cstdlib>

namespace aks::check::symbolic {

std::string_view to_string(Sym sym) {
  switch (sym) {
    case Sym::row0: return "Row0";
    case Sym::col0: return "Col0";
    case Sym::batch_idx: return "BatchIdx";
    case Sym::batch: return "Batch";
    case Sym::m: return "M";
    case Sym::k: return "K";
    case Sym::n: return "N";
  }
  return "?";
}

bool AffineExpr::is_constant() const {
  for (const std::int64_t c : coeffs_) {
    if (c != 0) return false;
  }
  return true;
}

AffineExpr AffineExpr::operator+(const AffineExpr& rhs) const {
  AffineExpr out = *this;
  out.constant_ += rhs.constant_;
  for (std::size_t i = 0; i < kNumSymbols; ++i) out.coeffs_[i] += rhs.coeffs_[i];
  return out;
}

AffineExpr AffineExpr::operator-(const AffineExpr& rhs) const {
  AffineExpr out = *this;
  out.constant_ -= rhs.constant_;
  for (std::size_t i = 0; i < kNumSymbols; ++i) out.coeffs_[i] -= rhs.coeffs_[i];
  return out;
}

AffineExpr AffineExpr::operator*(std::int64_t scale) const {
  AffineExpr out = *this;
  out.constant_ *= scale;
  for (auto& c : out.coeffs_) c *= scale;
  return out;
}

AffineExpr AffineExpr::substitute(Sym s, const AffineExpr& replacement) const {
  const std::int64_t c = coeff(s);
  if (c == 0) return *this;
  AffineExpr out = *this;
  out.coeffs_[sym_index(s)] = 0;
  return out + replacement * c;
}

std::int64_t AffineExpr::eval(const Point& point) const {
  std::int64_t v = constant_;
  for (std::size_t i = 0; i < kNumSymbols; ++i) v += coeffs_[i] * point[i];
  return v;
}

std::string AffineExpr::to_string() const {
  std::string out;
  for (std::size_t i = 0; i < kNumSymbols; ++i) {
    const std::int64_t c = coeffs_[i];
    if (c == 0) continue;
    const std::string_view name = symbolic::to_string(static_cast<Sym>(static_cast<int>(i)));
    if (out.empty()) {
      if (c == 1) {
        out += name;
      } else if (c == -1) {
        out += "-";
        out += name;
      } else {
        out += std::to_string(c) + "*" + std::string(name);
      }
      continue;
    }
    out += c > 0 ? " + " : " - ";
    const std::int64_t mag = std::abs(c);
    if (mag != 1) out += std::to_string(mag) + "*";
    out += name;
  }
  if (constant_ != 0 || out.empty()) {
    if (out.empty()) {
      out = std::to_string(constant_);
    } else {
      out += constant_ > 0 ? " + " : " - ";
      out += std::to_string(std::abs(constant_));
    }
  }
  return out;
}

}  // namespace aks::check::symbolic
