#include "check/symbolic/domain.hpp"

namespace aks::check::symbolic {

namespace {

/// Positive remainder of `v` modulo `m` (m > 0).
std::int64_t pos_mod(std::int64_t v, std::int64_t m) {
  const std::int64_t r = v % m;
  return r < 0 ? r + m : r;
}

/// Smallest value >= `lo` congruent to residue (mod modulus).
AffineExpr align_lower(const AffineExpr& bound, const SymConstraint& sc) {
  if (sc.modulus <= 1 || !bound.is_constant()) return bound;
  const std::int64_t lo = bound.constant_term();
  return AffineExpr::constant(lo + pos_mod(sc.residue - lo, sc.modulus));
}

/// Largest value <= `up` congruent to residue (mod modulus).
AffineExpr align_upper(const AffineExpr& bound, const SymConstraint& sc) {
  if (sc.modulus <= 1 || !bound.is_constant()) return bound;
  const std::int64_t up = bound.constant_term();
  return AffineExpr::constant(up - pos_mod(up - sc.residue, sc.modulus));
}

bool prove_from(const AffineExpr& expr, const ShapeDomain& domain, int index) {
  if (index == kNumSymbols) {
    return expr.is_constant() && expr.constant_term() >= 0;
  }
  const Sym s = static_cast<Sym>(index);
  const std::int64_t c = expr.coeff(s);
  if (c == 0) return prove_from(expr, domain, index + 1);
  const SymConstraint& sc = domain.constraint(s);
  if (!sc.active) return false;
  // Positive coefficient: the expression is minimised at the symbol's
  // minimum, so substituting any lower bound only under-estimates — a
  // non-negative result is then valid for the whole range. Negative
  // coefficient: symmetric with upper bounds; an unbounded symbol with a
  // negative coefficient can never be proved.
  const auto& bounds = c > 0 ? sc.lower : sc.upper;
  for (const AffineExpr& bound : bounds) {
    const AffineExpr aligned =
        c > 0 ? align_lower(bound, sc) : align_upper(bound, sc);
    if (prove_from(expr.substitute(s, aligned), domain, index + 1)) {
      return true;
    }
  }
  return false;
}

}  // namespace

void ShapeDomain::add_symbol(Sym s, std::int64_t lo) {
  SymConstraint& sc = constraints_[sym_index(s)];
  sc.active = true;
  sc.lower.push_back(AffineExpr::constant(lo));
}

void ShapeDomain::add_symbol(Sym s, std::int64_t lo, const AffineExpr& hi) {
  add_symbol(s, lo);
  constraints_[sym_index(s)].upper.push_back(hi);
}

void ShapeDomain::add_lower(Sym s, const AffineExpr& bound) {
  constraints_[sym_index(s)].lower.push_back(bound);
}

void ShapeDomain::add_upper(Sym s, const AffineExpr& bound) {
  constraints_[sym_index(s)].upper.push_back(bound);
}

void ShapeDomain::add_congruence(Sym s, std::int64_t modulus,
                                 std::int64_t residue) {
  if (modulus <= 1) return;
  SymConstraint& sc = constraints_[sym_index(s)];
  residue = pos_mod(residue, modulus);
  if (sc.modulus == 1) {
    sc.modulus = modulus;
    sc.residue = residue;
    return;
  }
  // Keep the stronger congruence when one modulus divides the other and the
  // residues agree (then it implies the weaker one exactly); otherwise keep
  // the existing constraint — dropping a conjunct only enlarges the domain,
  // which is sound for proving.
  if (modulus % sc.modulus == 0 && pos_mod(residue, sc.modulus) == sc.residue) {
    sc.modulus = modulus;
    sc.residue = residue;
  }
}

bool ShapeDomain::absorb_constraint(const AffineExpr& nonneg) {
  // Prefer isolating a tile-origin symbol (their bounds may reference shape
  // symbols); fall back to a shape symbol with a constant remainder.
  const Sym tile_syms[] = {Sym::row0, Sym::col0, Sym::batch_idx};
  Sym isolated = Sym::row0;
  int tile_mentions = 0;
  for (const Sym s : tile_syms) {
    if (nonneg.coeff(s) != 0) {
      ++tile_mentions;
      isolated = s;
    }
  }
  if (tile_mentions > 1) return false;
  if (tile_mentions == 0) {
    int mentions = 0;
    for (int i = 0; i < kNumSymbols; ++i) {
      if (nonneg.coeff(static_cast<Sym>(i)) != 0) {
        ++mentions;
        isolated = static_cast<Sym>(i);
      }
    }
    if (mentions != 1) return false;
  }
  const std::int64_t c = nonneg.coeff(isolated);
  if (c != 1 && c != -1) return false;
  if (!is_active(isolated)) return false;
  AffineExpr rest = nonneg.substitute(isolated, AffineExpr::constant(0));
  if (tile_mentions == 0 && !rest.is_constant()) return false;
  if (c == 1) {
    // isolated + rest >= 0  =>  isolated >= -rest
    add_lower(isolated, rest * -1);
  } else {
    // rest - isolated >= 0  =>  isolated <= rest
    add_upper(isolated, rest);
  }
  return true;
}

bool ShapeDomain::contains(const Point& point) const {
  for (std::size_t i = 0; i < kNumSymbols; ++i) {
    const SymConstraint& sc = constraints_[i];
    if (!sc.active) continue;
    const std::int64_t v = point[i];
    for (const AffineExpr& b : sc.lower) {
      if (v < b.eval(point)) return false;
    }
    for (const AffineExpr& b : sc.upper) {
      if (v > b.eval(point)) return false;
    }
    if (sc.modulus > 1 && pos_mod(v - sc.residue, sc.modulus) != 0) {
      return false;
    }
  }
  return true;
}

bool prove_nonneg(const AffineExpr& expr, const ShapeDomain& domain) {
  return prove_from(expr, domain, 0);
}

}  // namespace aks::check::symbolic
