#include "check/symbolic/verifier.hpp"

#include <algorithm>
#include <optional>
#include <sstream>

#include "check/config_lint.hpp"
#include "common/error.hpp"

namespace aks::check::symbolic {

namespace {

Point base_point(const WitnessShape& shape) {
  Point p{};
  p[sym_index(Sym::batch)] = shape.batch;
  p[sym_index(Sym::m)] = shape.m;
  p[sym_index(Sym::k)] = shape.k;
  p[sym_index(Sym::n)] = shape.n;
  return p;
}

std::int64_t ceil_div(std::int64_t a, std::int64_t b) {
  return (a + b - 1) / b;
}

/// Tile origins a concrete launch assigns along one schedule dimension:
/// multiples of pitch covering [0, extent), extended to the padded launch
/// edge when the dimension is unguarded. Capped — the witness search scans
/// structured small shapes, not exhaustive launches.
std::vector<std::int64_t> origins_of(const ScheduleDim& dim,
                                     std::int64_t extent,
                                     std::int64_t cap) {
  const std::int64_t p = dim.pitch;
  std::int64_t tiles = ceil_div(std::max<std::int64_t>(extent, 1), p);
  if (!dim.guarded) tiles = ceil_div(tiles, dim.wg) * dim.wg;
  tiles = std::min(tiles, cap);
  std::vector<std::int64_t> origins;
  origins.reserve(static_cast<std::size_t>(tiles));
  for (std::int64_t t = 0; t < tiles; ++t) origins.push_back(t * p);
  return origins;
}

bool region_active(const AccessRegion& region, const Point& point) {
  for (const AffineExpr& pre : region.preconditions) {
    if (pre.eval(point) < 0) return false;
  }
  return true;
}

/// One work-item's concrete access rectangle.
struct ConcreteRect {
  std::int64_t ro, co;          // the item's tile origins
  std::int64_t rb, re, cb, ce;  // [rb, re) x [cb, ce)
};

std::vector<ConcreteRect> concrete_items(const AccessSummary& s,
                                         const AccessRegion& region,
                                         const WitnessShape& shape,
                                         std::int64_t origin_cap) {
  Point p = base_point(shape);
  const auto row_origins =
      origins_of(s.schedule[0], s.schedule[0].extent.eval(p), origin_cap);
  const auto col_origins =
      origins_of(s.schedule[1], s.schedule[1].extent.eval(p), origin_cap);
  std::vector<ConcreteRect> items;
  for (const std::int64_t ro : row_origins) {
    for (const std::int64_t co : col_origins) {
      p[sym_index(s.schedule[0].origin)] = ro;
      p[sym_index(s.schedule[1].origin)] = co;
      if (!region_active(region, p)) continue;
      const auto [rb, re] = region.rows.eval(p);
      if (rb >= re) continue;
      const auto [cb, ce] = region.cols.eval(p);
      if (cb >= ce) continue;
      items.push_back({ro, co, rb, re, cb, ce});
    }
  }
  return items;
}

bool concrete_oob(const AccessSummary& s, const AccessRegion& region,
                  const WitnessShape& shape) {
  const BufferModel* buffer = s.find_buffer(region.buffer);
  const Point base = base_point(shape);
  const std::int64_t rows = buffer->rows.eval(base);
  const std::int64_t cols = buffer->cols.eval(base);
  for (const auto& item : concrete_items(s, region, shape, /*origin_cap=*/64)) {
    if (item.rb < 0 || item.re > rows || item.cb < 0 || item.ce > cols) {
      return true;
    }
  }
  return false;
}

bool rects_overlap(const ConcreteRect& a, const ConcreteRect& b) {
  return a.rb < b.re && b.rb < a.re && a.cb < b.ce && b.cb < a.ce;
}

/// True when two *distinct* work-items touch a common cell through the two
/// regions at `shape`.
bool concrete_overlap(const AccessSummary& s, const AccessRegion& first,
                      const AccessRegion& second, const WitnessShape& shape) {
  const auto items_a = concrete_items(s, first, shape, /*origin_cap=*/16);
  const auto items_b = concrete_items(s, second, shape, /*origin_cap=*/16);
  for (const auto& a : items_a) {
    for (const auto& b : items_b) {
      if (a.ro == b.ro && a.co == b.co) continue;  // same work-item
      if (rects_overlap(a, b)) return true;
    }
  }
  return false;
}

/// True when an out-of-range item along schedule dim `dim_index` performs a
/// non-empty access at `shape` (the tail-unguarded condition).
bool concrete_tail(const AccessSummary& s, std::size_t dim_index,
                   const WitnessShape& shape) {
  const std::int64_t extent =
      s.schedule[dim_index].extent.eval(base_point(shape));
  for (const auto& region : s.regions) {
    for (const auto& item :
         concrete_items(s, region, shape, /*origin_cap=*/64)) {
      const std::int64_t origin = dim_index == 0 ? item.ro : item.co;
      if (origin >= extent) return true;
    }
  }
  return false;
}

std::optional<WitnessShape> find_oob_witness(
    const AccessSummary& s, const AccessRegion& region,
    const std::vector<WitnessShape>& candidates) {
  for (const auto& shape : candidates) {
    if (concrete_oob(s, region, shape)) return shape;
  }
  return std::nullopt;
}

std::optional<WitnessShape> find_overlap_witness(
    const AccessSummary& s, const AccessRegion& first,
    const AccessRegion& second, const std::vector<WitnessShape>& candidates) {
  for (const auto& shape : candidates) {
    if (concrete_overlap(s, first, second, shape)) return shape;
  }
  return std::nullopt;
}

/// Proof that the region's `ext` along `dim` stays inside the owning item's
/// [origin, origin + pitch) footprint — the slicing property that makes
/// distinct items' accesses disjoint. Empty regions are trivially sliced.
bool extent_sliced(const Extent& ext, const ScheduleDim& dim,
                   const ShapeDomain& domain) {
  if (ext.end.empty()) return true;
  const AffineExpr origin = AffineExpr::sym(dim.origin);
  if (!prove_nonneg(ext.begin - origin, domain)) return false;
  for (const AffineExpr& end : ext.end) {
    if (prove_nonneg(origin + dim.pitch - end, domain)) return true;
  }
  return false;
}

std::string extent_str(const Extent& ext) {
  if (ext.end.empty()) return "[empty)";
  std::string end = ext.end[0].to_string();
  for (std::size_t i = 1; i < ext.end.size(); ++i) {
    end = "min(" + end + ", " + ext.end[i].to_string() + ")";
  }
  return "[" + ext.begin.to_string() + ", " + end + ")";
}

std::string region_str(const AccessRegion& region) {
  return std::string(region.is_write ? "write" : "read") + " of " +
         region.buffer + " rows " + extent_str(region.rows) + " cols " +
         extent_str(region.cols);
}

}  // namespace

Verdict parse_verdict(std::string_view name) {
  for (const Verdict v : {Verdict::safe, Verdict::unsafe, Verdict::unknown}) {
    if (to_string(v) == name) return v;
  }
  AKS_FAIL("unknown verdict '" << name << "'");
}

std::string WitnessShape::to_string() const {
  std::ostringstream os;
  os << "m=" << m << " k=" << k << " n=" << n;
  if (batch != 1) os << " batch=" << batch;
  return os.str();
}

Diagnostic SymbolicFinding::to_diagnostic(const std::string& kernel) const {
  return {.kind = kind,
          .kernel = kernel,
          .buffer = buffer,
          .index = 0,
          .group_a = kNoGroup,
          .group_b = kNoGroup,
          .message = "[" + rule + "] " + message};
}

ShapeDomain domain_of(const AccessSummary& summary) {
  ShapeDomain domain;
  domain.add_symbol(Sym::m, 1);
  domain.add_symbol(Sym::k, 1);
  domain.add_symbol(Sym::n, 1);
  if (summary.batched) {
    domain.add_symbol(Sym::batch, 1);
    domain.add_symbol(Sym::batch_idx, 0, AffineExpr::sym(Sym::batch) - 1);
  }
  for (const auto& dim : summary.schedule) {
    AffineExpr hi = dim.extent - 1;
    // Unguarded schedules let origins run to the padded launch edge:
    // max origin <= extent - 1 + (wg - 1) * pitch.
    if (!dim.guarded) hi = hi + static_cast<std::int64_t>(dim.wg - 1) * dim.pitch;
    domain.add_symbol(dim.origin, 0, hi);
    domain.add_congruence(dim.origin, dim.pitch, 0);
  }
  return domain;
}

std::vector<WitnessShape> witness_candidates(const AccessSummary& summary) {
  AKS_CHECK(summary.schedule.size() == 2,
            "access summary needs a 2-D tile schedule");
  const auto dim_values = [](const ScheduleDim& dim) {
    const std::int64_t p = dim.pitch;
    const std::int64_t wg = dim.wg;
    std::vector<std::int64_t> values{1, p, p + 1, p * wg, p * wg + p,
                                     p * (wg + 1)};
    std::sort(values.begin(), values.end());
    values.erase(std::unique(values.begin(), values.end()), values.end());
    return values;
  };
  const auto ms = dim_values(summary.schedule[0]);
  const auto ns = dim_values(summary.schedule[1]);
  std::vector<std::int64_t> ks{1, 7, 8};
  for (const int width : summary.staged_vector_widths) {
    ks.push_back(width);
    ks.push_back(width + 1);
  }
  std::sort(ks.begin(), ks.end());
  ks.erase(std::unique(ks.begin(), ks.end()), ks.end());
  const std::vector<std::int64_t> batches =
      summary.batched ? std::vector<std::int64_t>{1, 2}
                      : std::vector<std::int64_t>{1};

  std::vector<WitnessShape> shapes;
  for (const auto m : ms) {
    for (const auto k : ks) {
      for (const auto n : ns) {
        for (const auto b : batches) {
          shapes.push_back({.m = m, .k = k, .n = n, .batch = b});
        }
      }
    }
  }
  return shapes;
}

std::vector<SymbolicFinding> check_capacity(const AccessSummary& summary,
                                            const perf::DeviceSpec& device) {
  std::vector<SymbolicFinding> findings;
  const auto add = [&](std::string_view rule, const std::string& message) {
    findings.push_back({.rule = std::string(rule),
                        .kind = DiagnosticKind::invalid_config,
                        .verdict = Verdict::unsafe,
                        .buffer = {},
                        .message = "on " + device.name + ": " + message,
                        .witness = {}});
  };
  if (summary.work_group_size > device.max_work_group_size) {
    std::ostringstream os;
    os << "work-group size " << summary.work_group_size
       << " exceeds device limit " << device.max_work_group_size;
    add(kRuleCapacityWg, os.str());
  }
  if (summary.local_memory_bytes > device.local_memory_bytes) {
    std::ostringstream os;
    os << "work-group commits " << summary.local_memory_bytes
       << " bytes of local memory; device has " << device.local_memory_bytes;
    add(kRuleCapacityLocalMem, os.str());
  }
  std::vector<int> widths = summary.staged_vector_widths;
  std::sort(widths.begin(), widths.end());
  widths.erase(std::unique(widths.begin(), widths.end()), widths.end());
  for (const int width : widths) {
    if (!vector_tail_ok(width, device.vector_width)) {
      std::ostringstream os;
      os << "staged access width " << width
         << " does not tile into native vector width " << device.vector_width;
      add(kRuleCapacityVector, os.str());
    }
  }
  return findings;
}

VerifyResult verify_access_summary(const AccessSummary& summary) {
  AKS_CHECK(summary.schedule.size() == 2,
            "access summary needs a 2-D tile schedule");
  VerifyResult result;
  const ShapeDomain domain = domain_of(summary);
  const auto candidates = witness_candidates(summary);

  const auto add_finding = [&](std::string_view rule, DiagnosticKind kind,
                               const std::string& buffer, std::string message,
                               const std::optional<WitnessShape>& witness) {
    SymbolicFinding finding;
    finding.rule = std::string(rule);
    finding.kind = kind;
    finding.buffer = buffer;
    if (witness) {
      finding.verdict = Verdict::unsafe;
      finding.witness = *witness;
      finding.message =
          std::move(message) + "; counterexample " + witness->to_string();
    } else {
      finding.verdict = Verdict::unknown;
      finding.message = std::move(message) +
                        "; no counterexample found, escalate to checked replay";
    }
    result.findings.push_back(std::move(finding));
  };

  // --- Bounds: every region inside its buffer's rows x cols extents. ---
  for (const auto& region : summary.regions) {
    const BufferModel* buffer = summary.find_buffer(region.buffer);
    AKS_CHECK(buffer != nullptr,
              "region references unknown buffer '" << region.buffer << "'");
    ShapeDomain local = domain;
    for (const AffineExpr& pre : region.preconditions) {
      // Best effort: an unabsorbed precondition merely widens the domain,
      // which stays sound (harder to prove, never wrong).
      local.absorb_constraint(pre);
    }
    const std::pair<const Extent*, const AffineExpr*> axes[] = {
        {&region.rows, &buffer->rows}, {&region.cols, &buffer->cols}};
    for (const auto& [ext, size] : axes) {
      if (ext->end.empty()) continue;  // empty region accesses nothing
      bool proved = prove_nonneg(ext->begin, local);
      if (proved) {
        proved = false;
        for (const AffineExpr& end : ext->end) {
          if (prove_nonneg(*size - end, local)) {
            proved = true;
            break;
          }
        }
      }
      if (!proved) {
        add_finding(kRuleOob, DiagnosticKind::out_of_bounds, buffer->name,
                    region_str(region) + " not provably inside " +
                        buffer->rows.to_string() + " x " +
                        buffer->cols.to_string(),
                    find_oob_witness(summary, region, candidates));
        break;
      }
    }
  }

  // --- Races: write slicing, batch slicing, and read/write separation. ---
  for (const auto& region : summary.regions) {
    if (!region.is_write) continue;
    const BufferModel* buffer = summary.find_buffer(region.buffer);
    const bool sliced =
        extent_sliced(region.rows, summary.schedule[0], domain) &&
        extent_sliced(region.cols, summary.schedule[1], domain);
    if (!sliced) {
      add_finding(kRuleOverlapWw, DiagnosticKind::write_write_race,
                  buffer->name,
                  region_str(region) +
                      " is not sliced to the item's tile footprint",
                  find_overlap_witness(summary, region, region, candidates));
    }
    if (summary.batched && !buffer->batch_sliced) {
      // Two batch entries address the same unsliced buffer: any non-empty
      // write overlaps itself across entries, no search needed.
      const WitnessShape witness{.m = summary.schedule[0].pitch,
                                 .k = 1,
                                 .n = summary.schedule[1].pitch,
                                 .batch = 2};
      const bool nonempty =
          !concrete_items(summary, region, witness, 4).empty();
      add_finding(kRuleOverlapWw, DiagnosticKind::write_write_race,
                  buffer->name,
                  "batched launch writes " + buffer->name +
                      " without per-entry slicing",
                  nonempty ? std::optional<WitnessShape>(witness)
                           : std::nullopt);
    }
    for (const auto& other : summary.regions) {
      if (other.is_write || other.buffer != region.buffer) continue;
      const bool read_sliced =
          extent_sliced(other.rows, summary.schedule[0], domain) &&
          extent_sliced(other.cols, summary.schedule[1], domain);
      if (!read_sliced) {
        add_finding(kRuleOverlapRw, DiagnosticKind::read_write_race,
                    buffer->name,
                    region_str(other) + " overlaps " + region_str(region) +
                        " of other work-items",
                    find_overlap_witness(summary, region, other, candidates));
      }
    }
  }

  // --- Tail: padded out-of-range items of unguarded schedules. ---
  for (std::size_t d = 0; d < summary.schedule.size(); ++d) {
    const ScheduleDim& dim = summary.schedule[d];
    if (dim.guarded || dim.wg <= 1) continue;
    // Witness layout: one real tile along this dimension, so the padded
    // launch contains wg - 1 out-of-range items.
    WitnessShape witness{.m = summary.schedule[0].pitch,
                         .k = 1,
                         .n = summary.schedule[1].pitch,
                         .batch = 1};
    if (concrete_tail(summary, d, witness)) {
      add_finding(kRuleTail, DiagnosticKind::tail_unguarded, {},
                  std::string("unguarded ") + (d == 0 ? "row" : "column") +
                      " schedule accesses memory from padded items",
                  witness);
    }
  }

  // --- Verdict aggregation. ---
  for (const auto& finding : result.findings) {
    if (finding.verdict == Verdict::unsafe) {
      result.verdict = Verdict::unsafe;
      break;
    }
    result.verdict = Verdict::unknown;
  }
  if (result.verdict == Verdict::safe) {
    result.precondition = "M >= 1 && K >= 1 && N >= 1";
    if (summary.batched) result.precondition += " && Batch >= 1";
  } else if (result.verdict == Verdict::unknown) {
    const auto count = static_cast<std::ptrdiff_t>(
        std::min<std::size_t>(candidates.size(), 8));
    result.replay_candidates.assign(candidates.begin(),
                                    candidates.begin() + count);
  }
  return result;
}

}  // namespace aks::check::symbolic
