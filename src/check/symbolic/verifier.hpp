// Symbolic access verifier: SAFE / UNSAFE / UNKNOWN verdicts per summary.
//
// `verify_access_summary` discharges, over *all* shapes admitted by the
// summary's preconditions, four obligation classes:
//
//   symbolic-oob         — every region stays inside its buffer's
//                          rows x cols extents (out_of_bounds);
//   symbolic-overlap-ww  — write regions are tile-sliced: each item writes
//                          only inside its own [origin, origin+pitch)
//                          footprint per schedule dimension, so distinct
//                          items can never write the same cell
//                          (write_write_race);
//   symbolic-overlap-rw  — when a written buffer is also read, the reads
//                          are sliced the same way (read_write_race);
//   symbolic-tail        — unguarded schedules must not access memory from
//                          padded out-of-range items (tail_unguarded).
//
// Each obligation is first attacked with the sound interval+congruence
// prover (domain.hpp). A failed proof is *not* a verdict: the verifier
// searches a structured family of small concrete shapes for a violating
// witness. Found witness -> UNSAFE with the concrete counterexample shape;
// no witness -> UNKNOWN, and the candidate shapes are exported so the
// caller can escalate to the dynamic checked replay (checked_gemm.hpp) —
// the SAFE/UNSAFE/UNKNOWN contract of DESIGN.md "Static verification".
//
// `check_capacity` separately validates a summary's resource facts against
// a DeviceSpec (work-group size, local memory, staged vector widths); these
// are concrete per-device checks, reported with the capacity-* rules.
#pragma once

#include <string>
#include <vector>

#include "check/diagnostics.hpp"
#include "check/symbolic/access_summary.hpp"
#include "check/symbolic/domain.hpp"
#include "perfmodel/device_spec.hpp"

namespace aks::check::symbolic {

enum class Verdict { safe, unsafe, unknown };

[[nodiscard]] constexpr std::string_view to_string(Verdict verdict) {
  switch (verdict) {
    case Verdict::safe: return "SAFE";
    case Verdict::unsafe: return "UNSAFE";
    case Verdict::unknown: return "UNKNOWN";
  }
  return "?";
}

/// Parses a verdict written by to_string(); throws common::Error.
[[nodiscard]] Verdict parse_verdict(std::string_view name);

/// A concrete GEMM shape (plus batch count) acting as a counterexample or
/// a replay-escalation candidate.
struct WitnessShape {
  std::int64_t m = 1;
  std::int64_t k = 1;
  std::int64_t n = 1;
  std::int64_t batch = 1;

  [[nodiscard]] std::string to_string() const;
  [[nodiscard]] bool operator==(const WitnessShape&) const = default;
};

/// Machine-matchable rule identifiers of the symbolic diagnostic classes.
inline constexpr std::string_view kRuleOob = "symbolic-oob";
inline constexpr std::string_view kRuleOverlapWw = "symbolic-overlap-ww";
inline constexpr std::string_view kRuleOverlapRw = "symbolic-overlap-rw";
inline constexpr std::string_view kRuleTail = "symbolic-tail";
inline constexpr std::string_view kRuleCapacityWg = "capacity-work-group-size";
inline constexpr std::string_view kRuleCapacityLocalMem =
    "capacity-local-memory";
inline constexpr std::string_view kRuleCapacityVector =
    "capacity-vector-width";

struct SymbolicFinding {
  std::string rule;
  DiagnosticKind kind = DiagnosticKind::out_of_bounds;
  /// unsafe (witness holds a counterexample) or unknown (unproved, no
  /// witness found); SAFE summaries produce no findings.
  Verdict verdict = Verdict::unsafe;
  std::string buffer;
  std::string message;
  WitnessShape witness;

  /// View as the subsystem-wide diagnostic type.
  [[nodiscard]] Diagnostic to_diagnostic(const std::string& kernel) const;
};

struct VerifyResult {
  Verdict verdict = Verdict::safe;
  std::vector<SymbolicFinding> findings;
  /// For SAFE: the shape precondition the certificate quantifies over,
  /// e.g. "M >= 1 && K >= 1 && N >= 1".
  std::string precondition;
  /// For UNKNOWN: shapes the caller should escalate to checked replay.
  std::vector<WitnessShape> replay_candidates;
};

/// Verifies the access obligations of `summary` for all admitted shapes.
[[nodiscard]] VerifyResult verify_access_summary(const AccessSummary& summary);

/// Checks the summary's resource facts against one device. Violations are
/// concrete, so every finding is UNSAFE with kind invalid_config.
[[nodiscard]] std::vector<SymbolicFinding> check_capacity(
    const AccessSummary& summary, const perf::DeviceSpec& device);

/// The shape domain the verifier quantifies over — exposed for tests.
[[nodiscard]] ShapeDomain domain_of(const AccessSummary& summary);

/// The structured candidate shapes the witness search enumerates for
/// `summary` — exposed so the differential mode and the property tests
/// replay exactly what the verifier sampled.
[[nodiscard]] std::vector<WitnessShape> witness_candidates(
    const AccessSummary& summary);

}  // namespace aks::check::symbolic
