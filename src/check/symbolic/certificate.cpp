#include "check/symbolic/certificate.hpp"

#include <algorithm>
#include <sstream>

#include "check/checked_gemm.hpp"
#include "check/config_lint.hpp"
#include "common/csv.hpp"
#include "common/error.hpp"
#include "gemm/access_metadata.hpp"

namespace aks::check::symbolic {

namespace {

/// The CSV layer supports no quoting, so cells must not contain commas.
std::string sanitize_cell(std::string text) {
  std::replace(text.begin(), text.end(), ',', ';');
  return text;
}

std::string witness_cell(const WitnessShape& witness) {
  std::ostringstream os;
  os << witness.m << "x" << witness.k << "x" << witness.n << "x"
     << witness.batch;
  return os.str();
}

WitnessShape parse_witness_cell(const std::string& cell) {
  WitnessShape witness;
  std::istringstream is(cell);
  char sep = 'x';
  is >> witness.m >> sep >> witness.k >> sep >> witness.n >> sep >>
      witness.batch;
  AKS_CHECK(!is.fail(), "malformed witness cell '" << cell << "'");
  return witness;
}

gemm::GemmShape gemm_shape_of(const WitnessShape& witness) {
  return {.m = static_cast<std::size_t>(witness.m),
          .k = static_cast<std::size_t>(witness.k),
          .n = static_cast<std::size_t>(witness.n)};
}

bool is_capacity_rule(const std::string& rule) {
  return rule.rfind("capacity-", 0) == 0;
}

/// Device-independent access verification of one configuration: the tiled
/// summary plus (optionally) the batched one, findings concatenated.
VerifyResult verify_config_access(const gemm::KernelConfig& config,
                                  bool include_batched) {
  const auto pattern = gemm::tiled_access_pattern(config);
  VerifyResult result = verify_access_summary(summarize_tiled_gemm(pattern));
  if (include_batched) {
    VerifyResult batched =
        verify_access_summary(summarize_batched_tiled_gemm(pattern));
    for (auto& finding : batched.findings) {
      result.findings.push_back(std::move(finding));
    }
    if (batched.verdict == Verdict::unsafe ||
        (batched.verdict == Verdict::unknown &&
         result.verdict == Verdict::safe)) {
      result.verdict = batched.verdict;
      result.precondition.clear();
    }
    for (const auto& shape : batched.replay_candidates) {
      if (std::find(result.replay_candidates.begin(),
                    result.replay_candidates.end(),
                    shape) == result.replay_candidates.end()) {
        result.replay_candidates.push_back(shape);
      }
    }
  }
  return result;
}

}  // namespace

std::size_t CertifyReport::count(Verdict verdict) const {
  return static_cast<std::size_t>(
      std::count_if(certificates.begin(), certificates.end(),
                    [&](const Certificate& c) { return c.verdict == verdict; }));
}

std::vector<bool> CertifyReport::safe_mask(std::size_t num_configs,
                                           const std::string& device) const {
  std::vector<bool> safe(num_configs, true);
  for (const auto& cert : certificates) {
    if (!device.empty() && cert.device != device) continue;
    if (cert.verdict != Verdict::safe && cert.config_index < num_configs) {
      safe[cert.config_index] = false;
    }
  }
  return safe;
}

void CertifyReport::save_csv(const std::filesystem::path& path) const {
  common::CsvTable table;
  table.header = {"config_index", "config",  "device",       "verdict",
                  "rule",         "precondition", "witness",  "replay_clean",
                  "message"};
  // Provenance row so a round-tripped report keeps its sweep dimensions.
  table.rows.push_back({std::to_string(configs_checked), "#summary",
                        std::to_string(devices_checked), "summary", "", "",
                        "", "", ""});
  for (const auto& cert : certificates) {
    table.rows.push_back({std::to_string(cert.config_index),
                          sanitize_cell(cert.config),
                          sanitize_cell(cert.device),
                          std::string(to_string(cert.verdict)), cert.rule,
                          sanitize_cell(cert.precondition),
                          witness_cell(cert.witness),
                          cert.replay_clean ? "1" : "0",
                          sanitize_cell(cert.message)});
  }
  common::write_csv(path, table);
}

CertifyReport CertifyReport::load_csv(const std::filesystem::path& path) {
  const common::CsvTable table = common::read_csv(path);
  const std::size_t idx_col = table.column_index("config_index");
  const std::size_t cfg_col = table.column_index("config");
  const std::size_t dev_col = table.column_index("device");
  const std::size_t verdict_col = table.column_index("verdict");
  const std::size_t rule_col = table.column_index("rule");
  const std::size_t pre_col = table.column_index("precondition");
  const std::size_t wit_col = table.column_index("witness");
  const std::size_t replay_col = table.column_index("replay_clean");
  const std::size_t msg_col = table.column_index("message");
  CertifyReport report;
  for (const auto& row : table.rows) {
    if (row[verdict_col] == "summary") {
      report.configs_checked =
          static_cast<std::size_t>(std::stoull(row[idx_col]));
      report.devices_checked =
          static_cast<std::size_t>(std::stoull(row[dev_col]));
      continue;
    }
    Certificate cert;
    cert.config_index = static_cast<std::size_t>(std::stoull(row[idx_col]));
    cert.config = row[cfg_col];
    cert.device = row[dev_col];
    cert.verdict = parse_verdict(row[verdict_col]);
    cert.rule = row[rule_col];
    cert.precondition = row[pre_col];
    cert.witness = parse_witness_cell(row[wit_col]);
    cert.replay_clean = row[replay_col] != "0";
    cert.message = row[msg_col];
    report.certificates.push_back(std::move(cert));
  }
  return report;
}

CertifyReport certify_space(std::span<const gemm::KernelConfig> configs,
                            std::span<const perf::DeviceSpec> devices,
                            const CertifyOptions& options) {
  std::size_t num_configs = configs.size();
  if (options.max_configs > 0) {
    num_configs = std::min(num_configs, options.max_configs);
  }
  CertifyReport report;
  report.configs_checked = num_configs;
  report.devices_checked = devices.size();

  for (std::size_t i = 0; i < num_configs; ++i) {
    const gemm::KernelConfig& config = configs[i];
    const VerifyResult access =
        verify_config_access(config, options.include_batched);

    bool replay_clean = true;
    if (access.verdict == Verdict::unknown && options.escalate_unknown) {
      for (const auto& shape : access.replay_candidates) {
        const CheckResult replay = check_gemm(config, gemm_shape_of(shape));
        if (!replay.findings.empty()) replay_clean = false;
        if (shape.batch > 1) {
          const CheckResult batched = check_batched_gemm(
              config, gemm_shape_of(shape),
              static_cast<std::size_t>(shape.batch));
          if (!batched.findings.empty()) replay_clean = false;
        }
      }
    }

    const auto summary = summarize_tiled_gemm(gemm::tiled_access_pattern(config));
    for (const auto& device : devices) {
      Certificate cert;
      cert.config_index = i;
      cert.config = config.name();
      cert.device = device.name;
      cert.replay_clean = replay_clean;
      const auto capacity = check_capacity(summary, device);
      // Access findings are device-independent and take precedence in the
      // reported rule, so the per-config access verdict stays recoverable
      // from any device row; capacity only surfaces on access-safe configs.
      if (access.verdict != Verdict::safe) {
        cert.verdict = access.verdict;
        cert.rule = access.findings.front().rule;
        cert.message = access.findings.front().message;
        cert.witness = access.findings.front().witness;
      } else if (!capacity.empty()) {
        cert.verdict = Verdict::unsafe;
        cert.rule = capacity.front().rule;
        cert.message = capacity.front().message;
      } else {
        cert.verdict = Verdict::safe;
        cert.precondition = access.precondition;
      }
      report.certificates.push_back(std::move(cert));
    }
  }
  return report;
}

DifferentialResult differential_check(
    const CertifyReport& report, std::span<const gemm::KernelConfig> configs,
    std::span<const perf::DeviceSpec> devices, std::size_t samples) {
  DifferentialResult result;
  const std::size_t num_configs = report.configs_checked;
  AKS_CHECK(num_configs <= configs.size(),
            "certify report covers more configs than provided");
  std::size_t stride = 1;
  if (samples > 0 && samples < num_configs) stride = num_configs / samples;

  const auto corpus = default_shape_corpus();
  for (std::size_t i = 0; i < num_configs; i += stride) {
    const gemm::KernelConfig& config = configs[i];
    ++result.configs_sampled;
    const auto mismatch = [&](const std::string& device,
                              const std::string& detail) {
      result.mismatches.push_back(
          {.config_index = i,
           .config = config.name(),
           .device = device,
           .detail = detail});
    };

    // Collect this config's certificates (one per device).
    std::vector<const Certificate*> certs;
    for (const auto& cert : report.certificates) {
      if (cert.config_index == i) certs.push_back(&cert);
    }
    if (certs.empty()) {
      mismatch({}, "no certificate in report");
      continue;
    }

    // The symbolic access verdict is device-independent; recover it from
    // the rows (capacity rules only surface when access was safe).
    const Certificate* access_cert = nullptr;
    for (const Certificate* cert : certs) {
      if (cert->verdict != Verdict::safe && !is_capacity_rule(cert->rule)) {
        access_cert = cert;
        break;
      }
    }

    if (access_cert == nullptr) {
      // Access-SAFE: dynamic replay over the corpus must be clean.
      for (const auto& shape : corpus) {
        const CheckResult replay = check_gemm(config, shape);
        ++result.replays;
        if (!replay.findings.empty()) {
          mismatch({}, "SAFE verdict but replay on " + shape.to_string() +
                           " reported " +
                           std::to_string(replay.findings.size()) +
                           " finding(s)");
          break;
        }
      }
      const CheckResult batched = check_batched_gemm(config, corpus[1], 3);
      ++result.replays;
      if (!batched.findings.empty()) {
        mismatch({}, "SAFE verdict but batched replay reported " +
                         std::to_string(batched.findings.size()) +
                         " finding(s)");
      }
    } else if (access_cert->verdict == Verdict::unsafe) {
      // Access-UNSAFE: the counterexample shape must actually fail replay.
      const CheckResult replay =
          check_gemm(config, gemm_shape_of(access_cert->witness));
      ++result.replays;
      if (replay.findings.empty()) {
        mismatch(access_cert->device,
                 "UNSAFE counterexample " + access_cert->witness.to_string() +
                     " replays clean");
      }
    } else {
      mismatch(access_cert->device, "UNKNOWN verdict unresolved");
    }

    // Capacity verdicts must agree with the config lint, per device.
    for (const Certificate* cert : certs) {
      const auto device =
          std::find_if(devices.begin(), devices.end(),
                       [&](const perf::DeviceSpec& d) {
                         return d.name == cert->device;
                       });
      if (device == devices.end()) continue;
      const bool lint_dirty = !lint_config(config, i, *device).empty();
      if (is_capacity_rule(cert->rule) && !lint_dirty) {
        mismatch(cert->device,
                 "capacity verdict " + cert->rule + " but lint is clean");
      }
      if (lint_dirty && cert->verdict == Verdict::safe) {
        mismatch(cert->device, "SAFE verdict but config lint has findings");
      }
    }
  }
  return result;
}

}  // namespace aks::check::symbolic
