// Closed-form access summaries of the GEMM kernel families.
//
// An `AccessSummary` describes, per configured launch, every global-memory
// region a work-item touches as affine index ranges symbolic in the GEMM
// shape (M, K, N), the batch count, and the item's tile origins — together
// with the work-group schedule that assigns those origins. The summaries
// are generated from `gemm::KernelAccessPattern` (declarative facts stated
// next to the kernel source), so the verifier reasons about the shipped
// kernels' actual guard/clamp structure, for *all* shapes satisfying the
// preconditions, not per replayed shape.
//
// Modelling decisions that keep everything affine (and hence decidable):
//
//   * Buffers are two-dimensional (rows x cols). A flat index r*stride + c
//     is in bounds iff 0 <= r < rows and 0 <= c < cols with cols == stride,
//     so splitting the dimensions avoids the non-affine products (M*K)
//     that flat sizes would need.
//   * A range end that the kernel clamps (min(Row0+RT, M)) is a *list* of
//     affine candidates with `end = min(list)` semantics: proving any one
//     candidate below a bound proves the minimum below it.
//   * Batched launches slice each buffer per batch entry with subspan, an
//     exact partition by construction; regions are slice-relative and the
//     partition is recorded as a structural `batch_sliced` fact instead of
//     bilinear offset arithmetic.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "check/symbolic/affine.hpp"
#include "gemm/access_metadata.hpp"

namespace aks::check::symbolic {

/// Half-open affine range [begin, min(end list)). An empty end list means
/// an empty range (accesses nothing).
struct Extent {
  AffineExpr begin;
  std::vector<AffineExpr> end;

  [[nodiscard]] static Extent empty() { return {}; }
  [[nodiscard]] static Extent range(AffineExpr b, AffineExpr e) {
    return {.begin = std::move(b), .end = {std::move(e)}};
  }
  /// Concrete [begin, end) at `point`; end = min over candidates.
  [[nodiscard]] std::pair<std::int64_t, std::int64_t> eval(
      const Point& point) const;
};

/// One logical buffer of the launch, rows x cols of floats. `cols` doubles
/// as the row stride, which is exactly how the kernels index.
struct BufferModel {
  std::string name;  ///< "A", "B" or "C" — matches replay diagnostics.
  AffineExpr rows;
  AffineExpr cols;
  /// Batched launches partition the buffer per batch entry via subspan;
  /// regions are then slice-relative and entries cannot alias.
  bool batch_sliced = false;
};

/// A rectangular per-work-item access to one buffer.
struct AccessRegion {
  std::string buffer;
  bool is_write = false;
  Extent rows;
  Extent cols;
  /// The region is only touched where every expression is >= 0. The
  /// verifier folds these into the shape domain when they isolate a single
  /// symbol and keeps them for concrete evaluation otherwise.
  std::vector<AffineExpr> preconditions;
};

/// One dimension of the tile schedule: the launch assigns `origin` values
/// that are multiples of `pitch`, covering [0, extent) with `wg` tiles per
/// work-group (launches are padded to whole groups).
struct ScheduleDim {
  Sym origin = Sym::row0;
  AffineExpr extent;
  int pitch = 1;
  int wg = 1;
  /// The kernel returns early when origin >= extent, so padded items are
  /// silent. Unguarded schedules let origins run to the padded launch edge.
  bool guarded = true;
};

struct AccessSummary {
  std::string kernel;
  /// Row dimension then column dimension of the 2-D tile schedule.
  std::vector<ScheduleDim> schedule;
  /// Adds BatchIdx in [0, Batch) as an outer guarded dimension.
  bool batched = false;
  std::vector<BufferModel> buffers;
  std::vector<AccessRegion> regions;

  /// Capacity facts checked per DeviceSpec (verifier.hpp).
  std::size_t local_memory_bytes = 0;
  int work_group_size = 1;
  /// Staged access widths that must tile into the device's native vector.
  std::vector<int> staged_vector_widths;

  [[nodiscard]] const BufferModel* find_buffer(const std::string& name) const;
};

/// Summary of TiledGemmKernel<RT, CT, AS> under `pattern`'s schedule.
[[nodiscard]] AccessSummary summarize_tiled_gemm(
    const gemm::KernelAccessPattern& pattern);

/// Summary of BatchedTiledGemmKernel: the tiled summary plus the guarded
/// batch dimension and per-entry buffer slicing.
[[nodiscard]] AccessSummary summarize_batched_tiled_gemm(
    const gemm::KernelAccessPattern& pattern);

/// Summary of basic_hierarchical_gemm<Tile>: one output element per item
/// (pitch-1 schedule with Tile x Tile groups), panels in local memory.
[[nodiscard]] AccessSummary summarize_hierarchical_gemm(int tile);

}  // namespace aks::check::symbolic
