#include "check/diagnostics.hpp"

#include <algorithm>
#include <sstream>

namespace aks::check {

std::string Diagnostic::format() const {
  std::ostringstream os;
  os << "[" << to_string(kind) << "] kernel=" << kernel;
  if (!buffer.empty()) os << " buffer=" << buffer << " index=" << index;
  if (group_a != kNoGroup && group_b != kNoGroup) {
    os << " groups=" << group_a << "," << group_b;
  } else if (group_b != kNoGroup) {
    os << " group=" << group_b;
  }
  if (!message.empty()) os << ": " << message;
  return os.str();
}

bool AccessMonitor::report(Diagnostic diagnostic) {
  diagnostic.kernel = kernel_;
  const auto duplicate = std::any_of(
      findings_.begin(), findings_.end(), [&](const Diagnostic& d) {
        return d.kind == diagnostic.kind && d.buffer == diagnostic.buffer &&
               d.index == diagnostic.index;
      });
  if (duplicate) return false;
  if (findings_.size() >= max_findings_) {
    ++dropped_;
    return false;
  }
  findings_.push_back(std::move(diagnostic));
  return true;
}

}  // namespace aks::check
