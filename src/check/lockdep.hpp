// Deterministic lock-order validator (lockdep) — the runtime half of the
// concurrency contract (the compile-time half is common/thread_annotations).
//
// Every aks::Mutex / aks::SharedMutex (common/sync.hpp) belongs to a lock
// *class*, registered once by name ("serve.shard", "store.state", ...);
// instances of the same class — all shard stripes, all single-flight
// entries — share one class, so the order graph stays small no matter how
// many mutexes the serving layer allocates. Each acquisition made while
// other classes are held adds held → acquired edges to a process-global
// directed graph. A cycle in that graph is a deadlock *potential*: two code
// paths that disagree about lock order will eventually interleave into a
// real deadlock, even if no test schedule has hit it yet. Unlike TSan —
// which only sees the interleavings that actually ran — the edge graph is a
// function of the code paths executed, not of the thread schedule, so one
// single-threaded pass over a code path certifies its ordering for every
// schedule.
//
// Also detected: blocking on a condition variable while holding any *other*
// tracked mutex (held-while-blocking), the classic lost-wakeup/deadlock
// shape where the held lock keeps every possible signaller out.
//
// Cost: acquisitions touch a thread-local held stack plus one relaxed
// atomic add per (held, acquired) pair; with no other lock held (every hot
// path in the serving layer) it is a TLS push/pop. The validator is always
// on — every test binary doubles as a lock-order check — and reports are
// exported as DOT/JSON by `akscheck locks` or, for any binary, by setting
// AKS_LOCKDEP_OUT=<path> (JSON written at process exit).
//
// This header is dependency-free (below aks_common) so common/sync.hpp can
// call into it.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace aks::check::lockdep {

/// Distinct lock classes a process may register. The serving stack uses
/// ~20; classes past the cap collapse into one shared "lockdep.overflow"
/// class (still tracked, conservatively merged).
inline constexpr std::size_t kMaxClasses = 64;

/// Held-stack depth tracked per thread; deeper nesting is counted but not
/// edge-tracked (the codebase never nests beyond 3).
inline constexpr std::size_t kMaxHeld = 16;

/// Registers (or looks up) the lock class `name` and returns its stable id.
/// Thread-safe; called from aks::Mutex constructors, including static-
/// initialization-time ones.
[[nodiscard]] std::uint32_t register_class(const char* name);

/// Name of a registered class (empty for an unknown id).
[[nodiscard]] std::string class_name(std::uint32_t cls);

/// Records an acquisition of `cls`: one held → cls edge per class currently
/// held by this thread, then pushes cls on the thread's held stack. Called
/// by the sync.hpp wrappers immediately before blocking on the underlying
/// mutex, so the edge exists even if the acquisition deadlocks.
void on_acquire(std::uint32_t cls);

/// Pops the most recent hold of `cls` from the thread's held stack.
void on_release(std::uint32_t cls);

/// Declares that the thread is about to block (condition-variable wait)
/// with `cls` released for the duration. Any *other* class still held is
/// recorded as a held-while-blocking violation.
void on_wait_block(std::uint32_t cls);

/// Classes currently held by the calling thread (innermost last).
[[nodiscard]] std::vector<std::uint32_t> held_by_this_thread();

/// Validator on/off (default on). Disabling only stops new recording;
/// already-recorded state stays reportable.
void set_enabled(bool enabled);
[[nodiscard]] bool enabled();

/// Clears recorded edges, counts and violations (class registrations
/// survive — live mutexes keep their ids). Test isolation only: callers
/// must be single-threaded with no tracked lock held.
void reset();

struct ClassInfo {
  std::uint32_t id = 0;
  std::string name;
  std::uint64_t acquisitions = 0;
};

struct EdgeInfo {
  std::uint32_t from = 0;
  std::uint32_t to = 0;
  std::string from_name;
  std::string to_name;
  std::uint64_t count = 0;
  /// Held stack (outermost first, names) at the edge's first observation.
  std::vector<std::string> witness;
};

/// One lock-order cycle: the class names along the closed walk, starting at
/// the smallest participating id. names = {A, B} reads A → B → A.
struct CycleInfo {
  std::vector<std::uint32_t> classes;
  std::vector<std::string> names;
};

struct ViolationInfo {
  std::string blocked_on;          ///< the class whose condvar was waited
  std::vector<std::string> held;   ///< other classes held while blocking
  std::uint64_t count = 0;
};

struct Report {
  std::vector<ClassInfo> classes;            ///< by id, registration order
  std::vector<EdgeInfo> edges;               ///< sorted by (from, to)
  std::vector<CycleInfo> cycles;             ///< empty == acyclic
  std::vector<ViolationInfo> held_while_blocking;
  [[nodiscard]] bool clean() const {
    return cycles.empty() && held_while_blocking.empty();
  }
};

/// Snapshot of the graph with cycle detection run (Tarjan SCC; one
/// representative cycle per strongly connected component, plus self-loops).
/// Deterministic given the set of code paths executed: edges depend on
/// lock nesting, which is program structure, not thread schedule.
[[nodiscard]] Report capture();

/// Graphviz DOT export: one node per class (acquisition count in the
/// label), one edge per observed ordering, cycle edges highlighted red.
void write_dot(const Report& report, std::ostream& out);

/// JSON export; schema: {"classes": [{id, name, acquisitions}], "edges":
/// [{from, to, count, witness[]}], "cycles": [[names...]],
/// "held_while_blocking": [{blocked_on, held[], count}]}.
void write_json(const Report& report, std::ostream& out);

}  // namespace aks::check::lockdep
