#include "check/lock_drill.hpp"

#include <algorithm>
#include <filesystem>
#include <optional>
#include <span>
#include <thread>
#include <vector>

#include "core/online.hpp"
#include "faults/injector.hpp"
#include "gemm/config.hpp"
#include "gemm/shape.hpp"
#include "perfmodel/device_spec.hpp"
#include "serve/selection_service.hpp"
#include "store/selection_store.hpp"
#include "trace/trace.hpp"

namespace aks::check {

namespace {

std::vector<gemm::GemmShape> drill_shapes(std::size_t n) {
  std::vector<gemm::GemmShape> shapes;
  shapes.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    shapes.push_back(
        {32 + 16 * i, 64 + 8 * ((i * 5) % 13), 32 + 24 * ((i * 11) % 7)});
  }
  return shapes;
}

/// One worker's request mix: all four entry points, with shape indices
/// offset per thread so some requests collide (coalesced waits, shard
/// contention) and some do not.
void drive(serve::SelectionService& service,
           const std::vector<gemm::GemmShape>& shapes, std::size_t thread_index,
           std::size_t requests) {
  for (std::size_t r = 0; r < requests; ++r) {
    const gemm::GemmShape& shape = shapes[(thread_index * 7 + r) % shapes.size()];
    switch (r % 4) {
      case 0:
        (void)service.select(shape);
        break;
      case 1: {
        const std::size_t begin = r % shapes.size();
        const std::size_t len = std::min<std::size_t>(4, shapes.size() - begin);
        (void)service.select_batch(std::span(shapes.data() + begin, len));
        break;
      }
      case 2:
        (void)service.select_async(shape).get();
        break;
      default:
        // stats() reconciles the shard-striped hit counters (serve.hit_sync
        // under the shard locks) — a distinct nesting worth observing.
        (void)service.stats();
        (void)service.select(shape);
        break;
    }
  }
}

}  // namespace

lockdep::Report run_lock_drill(const LockDrillOptions& options) {
  lockdep::reset();

  const auto journal =
      std::filesystem::temp_directory_path() / "aks_lock_drill.journal";
  std::filesystem::remove(journal);

  // A seeded plan with every probability zero: the injector takes its plan
  // lock on installation and snapshot without ever firing a fault, so
  // faults.plan joins the graph exactly where production probes put it.
  faults::FaultPlan plan;
  plan.seed = 1;
  const faults::ScopedFaultPlan install(plan);

  std::optional<trace::TraceSession> session;
  if (options.trace) session.emplace();

  const auto shapes = drill_shapes(std::max<std::size_t>(options.shapes, 1));
  const std::vector<std::size_t> candidates = {0, 1, 2, 3};
  const auto timer = [](const gemm::KernelConfig&,
                        const gemm::GemmShape& shape) {
    return 1e-6 * static_cast<double>(shape.m + shape.k + shape.n);
  };

  {
    store::SelectionStore store(journal);
    select::OnlineTuner tuner(candidates, timer);
    serve::ServiceOptions service_options;
    service_options.fallback = gemm::enumerate_configs()[0];
    serve::SelectionService service(tuner, service_options);
    (void)service.warm_start(store, perf::DeviceSpec::amd_r9_nano());

    std::vector<std::thread> workers;
    workers.reserve(options.threads);
    for (std::size_t t = 0; t < options.threads; ++t) {
      workers.emplace_back([&service, &shapes, t, &options] {
        drive(service, shapes, t, options.requests_per_thread);
      });
    }
    for (auto& worker : workers) worker.join();

    (void)service.refresh_provisional();
    (void)store.flush();
    store.compact();
  }

  // Second generation: re-open the store (journal replay) and warm-start a
  // fresh service from it, so the preseed path — tuner.state acquired under
  // the shard lock — and the warm hit path both join the graph.
  {
    store::SelectionStore store(journal);
    select::OnlineTuner tuner(candidates, timer);
    serve::SelectionService service(tuner);
    (void)service.warm_start(store, perf::DeviceSpec::amd_r9_nano());
    for (const auto& shape : shapes) (void)service.select(shape);
    (void)store.flush();
  }

  if (session) session->stop();
  std::filesystem::remove(journal);
  return lockdep::capture();
}

}  // namespace aks::check
