#include "check/checked_gemm.hpp"

#include <cmath>
#include <map>
#include <sstream>
#include <tuple>

#include "check/checked_buffer.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "gemm/hierarchical_kernel.hpp"
#include "gemm/reference.hpp"
#include "gemm/tiled_kernel.hpp"
#include "syclrt/queue.hpp"

namespace aks::check {

namespace {

using ReadAcc = CheckedAccessor<const float>;
using WriteAcc = CheckedAccessor<float>;
using Key = std::tuple<int, int, int>;

/// Numerical tolerance against the scalar reference (operands in [-1, 1],
/// K bounded by the corpus; pure float summation-order error).
constexpr double kTolerance = 1e-3;

using CheckedLauncher = syclrt::Event (*)(syclrt::Queue&, ReadAcc, ReadAcc,
                                          WriteAcc, gemm::GemmShape, int, int);
using CheckedBatchedLauncher = syclrt::Event (*)(syclrt::Queue&, ReadAcc,
                                                 ReadAcc, WriteAcc,
                                                 gemm::GemmShape, std::size_t,
                                                 int, int);

template <int RowTile, int ColTile, int AccSize>
syclrt::Event launch_checked(syclrt::Queue& queue, ReadAcc a, ReadAcc b,
                             WriteAcc c, gemm::GemmShape shape, int wg_rows,
                             int wg_cols) {
  // Identical launch geometry to registry.cpp: one item per output tile,
  // padded to whole work-groups.
  const std::size_t tiles_r =
      (shape.m + RowTile - 1) / static_cast<std::size_t>(RowTile);
  const std::size_t tiles_c =
      (shape.n + ColTile - 1) / static_cast<std::size_t>(ColTile);
  const syclrt::NdRange<2> range(
      syclrt::Range<2>(tiles_r, tiles_c),
      syclrt::Range<2>(static_cast<std::size_t>(wg_rows),
                       static_cast<std::size_t>(wg_cols)));
  const gemm::TiledGemmKernel<RowTile, ColTile, AccSize, ReadAcc, WriteAcc>
      kernel(a, b, c, shape);
  return queue.parallel_for(range, kernel);
}

template <int RowTile, int ColTile, int AccSize>
syclrt::Event launch_checked_batched(syclrt::Queue& queue, ReadAcc a,
                                     ReadAcc b, WriteAcc c,
                                     gemm::GemmShape shape, std::size_t batch,
                                     int wg_rows, int wg_cols) {
  const std::size_t tiles_r =
      (shape.m + RowTile - 1) / static_cast<std::size_t>(RowTile);
  const std::size_t tiles_c =
      (shape.n + ColTile - 1) / static_cast<std::size_t>(ColTile);
  const syclrt::NdRange<3> range(
      syclrt::Range<3>(batch, tiles_r, tiles_c),
      syclrt::Range<3>(std::size_t{1}, static_cast<std::size_t>(wg_rows),
                       static_cast<std::size_t>(wg_cols)));
  const gemm::BatchedTiledGemmKernel<RowTile, ColTile, AccSize, ReadAcc,
                                     WriteAcc>
      kernel(a, b, c, shape, batch);
  return queue.parallel_for(range, kernel);
}

struct CheckedEntry {
  CheckedLauncher flat;
  CheckedBatchedLauncher batched;
};

template <int RowTile, int ColTile, int AccSize>
void register_one(std::map<Key, CheckedEntry>& table) {
  table.emplace(Key{RowTile, ColTile, AccSize},
                CheckedEntry{&launch_checked<RowTile, ColTile, AccSize>,
                             &launch_checked_batched<RowTile, ColTile,
                                                     AccSize>});
}

template <int RowTile, int ColTile>
void register_acc(std::map<Key, CheckedEntry>& table) {
  register_one<RowTile, ColTile, 1>(table);
  register_one<RowTile, ColTile, 2>(table);
  register_one<RowTile, ColTile, 4>(table);
  register_one<RowTile, ColTile, 8>(table);
}

template <int RowTile>
void register_col(std::map<Key, CheckedEntry>& table) {
  register_acc<RowTile, 1>(table);
  register_acc<RowTile, 2>(table);
  register_acc<RowTile, 4>(table);
  register_acc<RowTile, 8>(table);
}

/// The 64 compiled instantiations over checked accessors (mirrors the
/// shipping registry's cross product).
const std::map<Key, CheckedEntry>& checked_registry() {
  static const std::map<Key, CheckedEntry> table = [] {
    std::map<Key, CheckedEntry> t;
    register_col<1>(t);
    register_col<2>(t);
    register_col<4>(t);
    register_col<8>(t);
    return t;
  }();
  return table;
}

const CheckedEntry& find_checked(const gemm::KernelConfig& config) {
  const auto it = checked_registry().find(
      Key{config.row_tile, config.col_tile, config.acc_size});
  AKS_CHECK(it != checked_registry().end(),
            "no checked kernel for " << config.name());
  return it->second;
}

/// Deterministic operand seed from the launch parameters (valid for
/// non-canonical configs too, unlike config_index()).
std::uint64_t operand_seed(const gemm::KernelConfig& config,
                           const gemm::GemmShape& shape) {
  std::uint64_t seed = 0x9e3779b97f4a7c15ULL;
  for (std::uint64_t v :
       {static_cast<std::uint64_t>(config.row_tile),
        static_cast<std::uint64_t>(config.col_tile),
        static_cast<std::uint64_t>(config.acc_size),
        static_cast<std::uint64_t>(config.wg_rows),
        static_cast<std::uint64_t>(config.wg_cols),
        static_cast<std::uint64_t>(shape.m), static_cast<std::uint64_t>(shape.k),
        static_cast<std::uint64_t>(shape.n)}) {
    seed = seed * 0x100000001b3ULL ^ v;
  }
  return seed;
}

void fill_uniform(std::span<float> out, common::Rng& rng) {
  for (auto& v : out) v = static_cast<float>(rng.uniform(-1.0, 1.0));
}

/// Compares checked output against the reference and finalises the result.
CheckResult finalise(AccessMonitor& monitor, std::span<const float> actual,
                     std::span<const float> expected) {
  CheckResult result;
  std::size_t worst_index = 0;
  for (std::size_t i = 0; i < actual.size(); ++i) {
    const double err = std::abs(static_cast<double>(actual[i]) -
                                static_cast<double>(expected[i]));
    if (err > result.max_abs_error) {
      result.max_abs_error = err;
      worst_index = i;
    }
  }
  if (result.max_abs_error > kTolerance ||
      !std::isfinite(result.max_abs_error)) {
    result.numerics_ok = false;
    std::ostringstream os;
    os << "output diverges from reference by " << result.max_abs_error
       << " (tolerance " << kTolerance << ")";
    monitor.report({.kind = DiagnosticKind::numeric_divergence,
                    .kernel = {},
                    .buffer = "C",
                    .index = worst_index,
                    .group_a = kNoGroup,
                    .group_b = kNoGroup,
                    .message = os.str()});
  }
  result.findings = monitor.findings();
  result.dropped_findings = monitor.dropped();
  return result;
}

}  // namespace

syclrt::Event launch_checked_gemm(syclrt::Queue& queue,
                                  const gemm::KernelConfig& config,
                                  CheckedAccessor<const float> a,
                                  CheckedAccessor<const float> b,
                                  CheckedAccessor<float> c,
                                  const gemm::GemmShape& shape) {
  return find_checked(config).flat(queue, a, b, c, shape, config.wg_rows,
                                   config.wg_cols);
}

syclrt::Event launch_checked_batched_gemm(syclrt::Queue& queue,
                                          const gemm::KernelConfig& config,
                                          CheckedAccessor<const float> a,
                                          CheckedAccessor<const float> b,
                                          CheckedAccessor<float> c,
                                          const gemm::GemmShape& shape,
                                          std::size_t batch) {
  return find_checked(config).batched(queue, a, b, c, shape, batch,
                                      config.wg_rows, config.wg_cols);
}

CheckResult check_gemm(const gemm::KernelConfig& config,
                       const gemm::GemmShape& shape) {
  const std::string label = config.name() + "@" + shape.to_string();
  AccessMonitor monitor(label);

  common::Rng rng(operand_seed(config, shape));
  std::vector<float> a(shape.m * shape.k);
  std::vector<float> b(shape.k * shape.n);
  fill_uniform(a, rng);
  fill_uniform(b, rng);
  std::vector<float> expected(shape.m * shape.n);
  gemm::reference_gemm(a, b, expected, shape);

  CheckedBuffer<float> a_buf("A", std::span<const float>(a), monitor);
  CheckedBuffer<float> b_buf("B", std::span<const float>(b), monitor);
  CheckedBuffer<float> c_buf("C", shape.m * shape.n, monitor);

  syclrt::Queue queue;
  queue.set_deterministic_replay(true);
  find_checked(config).flat(queue, a_buf.read(), b_buf.read(), c_buf.write(),
                            shape, config.wg_rows, config.wg_cols);
  return finalise(monitor, c_buf.host(), expected);
}

CheckResult check_batched_gemm(const gemm::KernelConfig& config,
                               const gemm::GemmShape& shape,
                               std::size_t batch) {
  AKS_CHECK(batch > 0, "batched check needs at least one batch entry");
  const std::string label =
      config.name() + "@" + shape.to_string() + "xB" + std::to_string(batch);
  AccessMonitor monitor(label);

  common::Rng rng(operand_seed(config, shape) ^ batch);
  std::vector<float> a(batch * shape.m * shape.k);
  std::vector<float> b(batch * shape.k * shape.n);
  fill_uniform(a, rng);
  fill_uniform(b, rng);
  std::vector<float> expected(batch * shape.m * shape.n);
  for (std::size_t bi = 0; bi < batch; ++bi) {
    gemm::reference_gemm(
        std::span<const float>(a).subspan(bi * shape.m * shape.k,
                                          shape.m * shape.k),
        std::span<const float>(b).subspan(bi * shape.k * shape.n,
                                          shape.k * shape.n),
        std::span<float>(expected).subspan(bi * shape.m * shape.n,
                                           shape.m * shape.n),
        shape);
  }

  CheckedBuffer<float> a_buf("A", std::span<const float>(a), monitor);
  CheckedBuffer<float> b_buf("B", std::span<const float>(b), monitor);
  CheckedBuffer<float> c_buf("C", batch * shape.m * shape.n, monitor);

  syclrt::Queue queue;
  queue.set_deterministic_replay(true);
  find_checked(config).batched(queue, a_buf.read(), b_buf.read(),
                               c_buf.write(), shape, batch, config.wg_rows,
                               config.wg_cols);
  return finalise(monitor, c_buf.host(), expected);
}

CheckResult check_hierarchical_gemm(const gemm::GemmShape& shape) {
  const std::string label = "hierarchical_t8@" + shape.to_string();
  AccessMonitor monitor(label);

  common::Rng rng(operand_seed({}, shape) ^ 0x5157ULL);
  std::vector<float> a(shape.m * shape.k);
  std::vector<float> b(shape.k * shape.n);
  fill_uniform(a, rng);
  fill_uniform(b, rng);
  std::vector<float> expected(shape.m * shape.n);
  gemm::reference_gemm(a, b, expected, shape);

  CheckedBuffer<float> a_buf("A", std::span<const float>(a), monitor);
  CheckedBuffer<float> b_buf("B", std::span<const float>(b), monitor);
  CheckedBuffer<float> c_buf("C", shape.m * shape.n, monitor);

  syclrt::Queue queue;
  queue.set_deterministic_replay(true);
  gemm::basic_hierarchical_gemm<8>(queue, a_buf.read(), b_buf.read(),
                                   c_buf.write(), shape);
  return finalise(monitor, c_buf.host(), expected);
}

std::vector<gemm::GemmShape> default_shape_corpus() {
  return {
      {16, 16, 16},  // aligned interior tiles for every config
      {17, 13, 9},   // ragged in all three dimensions (K remainders)
      {33, 20, 27},  // interior + edge tiles in the same launch
      {5, 7, 3},     // smaller than most tiles: edge path everywhere
      {1, 40, 1},    // degenerate row/column with long K
  };
}

RegistryCheckSummary check_registry(const RegistryCheckOptions& options) {
  RegistryCheckSummary summary;
  const std::vector<gemm::GemmShape> shapes =
      options.shapes.empty() ? default_shape_corpus() : options.shapes;

  const auto& configs = gemm::enumerate_configs();
  std::size_t limit = configs.size();
  if (options.max_configs > 0 && options.max_configs < limit) {
    limit = options.max_configs;
  }

  const auto absorb = [&summary](const CheckResult& result) {
    ++summary.launches;
    summary.dropped_findings += result.dropped_findings;
    summary.max_abs_error =
        std::max(summary.max_abs_error, result.max_abs_error);
    summary.findings.insert(summary.findings.end(), result.findings.begin(),
                            result.findings.end());
  };

  for (std::size_t i = 0; i < limit; ++i) {
    const gemm::KernelConfig& config = configs[i];
    ++summary.configs_checked;
    for (const auto& shape : shapes) {
      absorb(check_gemm(config, shape));
    }
    // The batched kernel shares the compiled instantiation; replay it once
    // per config on a small ragged batch.
    if (options.include_batched) {
      absorb(check_batched_gemm(config, {9, 5, 7}, 3));
    }
  }
  if (options.include_hierarchical) {
    for (const auto& shape : shapes) {
      absorb(check_hierarchical_gemm(shape));
    }
  }
  return summary;
}

}  // namespace aks::check
