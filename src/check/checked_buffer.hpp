// Shadow-instrumented buffer and accessor for the checked execution mode.
//
// A `CheckedBuffer` pairs every element with an access record (first
// writing work-group, first reading work-group); its `CheckedAccessor`s are
// span-shaped views that update those records on every access and report
// diagnostics to an `AccessMonitor`:
//
//   * out_of_bounds      — an index beyond the accessor's view; the access
//                          is redirected to a sacrificial sink element so
//                          the replay can continue safely past the bug.
//   * tail_unguarded     — any access made by a work-item outside the
//                          logical global range that has not consulted
//                          NdItem::in_range() first.
//   * write_write_race   — two distinct work-groups wrote one element.
//   * read_write_race    — one work-group read an element another wrote.
//
// Race attribution requires the deterministic replay executor
// (`Queue::set_deterministic_replay(true)`): groups then execute serially
// in canonical order, the instrumentation context identifies the current
// group, and the shadow state needs no synchronisation. Work-items within
// a group always run sequentially, so intra-group reuse is never a race —
// mirroring the SYCL memory model, where cross-group coherence is the only
// thing a kernel cannot assume.
//
// Mutable accessors model SYCL write accessors: every access through them
// counts as a write (the kernels in this repo never read C).
#pragma once

#include <cstddef>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "check/diagnostics.hpp"
#include "syclrt/instrument.hpp"

namespace aks::check {

namespace detail {

/// Per-element shadow record.
struct ElementShadow {
  std::size_t writer = kNoGroup;  ///< First work-group that wrote.
  std::size_t reader = kNoGroup;  ///< First work-group that read.
};

/// Heap-pinned state shared by a buffer and all accessors derived from it
/// (accessors are copied by value into kernels, so they hold a stable
/// pointer rather than references into a movable buffer object).
template <typename V>
struct BufferState {
  std::string label;
  std::vector<V> storage;
  std::vector<ElementShadow> shadow;
  V sink{};  ///< Target of redirected out-of-bounds accesses.
  AccessMonitor* monitor = nullptr;
};

}  // namespace detail

/// Span-shaped recording view over a CheckedBuffer. `T` may be const
/// (read accessor) or non-const (write accessor). Copy is cheap; the
/// originating buffer must outlive every accessor.
template <typename T>
class CheckedAccessor {
  using Value = std::remove_const_t<T>;
  static constexpr bool kIsRead = std::is_const_v<T>;

 public:
  CheckedAccessor(detail::BufferState<Value>* state, std::size_t offset,
                  std::size_t length)
      : state_(state), offset_(offset), length_(length) {}

  [[nodiscard]] std::size_t size() const { return length_; }

  /// Recorded element access; out-of-view indices are reported and
  /// redirected to the buffer's sink element.
  T& operator[](std::size_t i) const {
    auto* ctx = syclrt::instrument::context();
    if (i >= length_) {
      state_->monitor->report(
          {.kind = DiagnosticKind::out_of_bounds,
           .kernel = {},
           .buffer = state_->label,
           .index = offset_ + i,
           .group_a = kNoGroup,
           .group_b = ctx != nullptr ? ctx->flat_group : kNoGroup,
           .message = "access at view index " + std::to_string(i) +
                      " past view of " + std::to_string(length_) +
                      " elements (buffer size " +
                      std::to_string(state_->storage.size()) + ")"});
      return state_->sink;
    }
    const std::size_t global = offset_ + i;
    if (ctx != nullptr) {
      if (!ctx->item_in_logical_range && !ctx->guard_queried) {
        state_->monitor->report(
            {.kind = DiagnosticKind::tail_unguarded,
             .kernel = {},
             .buffer = state_->label,
             .index = global,
             .group_a = kNoGroup,
             .group_b = ctx->flat_group,
             .message = "work-item outside the logical range accessed "
                        "memory without checking in_range()"});
      }
      record(global, ctx->flat_group);
    }
    return state_->storage[global];
  }

  /// Sub-view; out-of-range bounds are reported and clamped so replay can
  /// continue with a valid (possibly empty) view.
  [[nodiscard]] CheckedAccessor subspan(std::size_t offset,
                                        std::size_t count) const {
    if (offset > length_ || count > length_ - offset) {
      auto* ctx = syclrt::instrument::context();
      state_->monitor->report(
          {.kind = DiagnosticKind::out_of_bounds,
           .kernel = {},
           .buffer = state_->label,
           .index = offset_ + std::min(offset, length_),
           .group_a = kNoGroup,
           .group_b = ctx != nullptr ? ctx->flat_group : kNoGroup,
           .message = "subspan(" + std::to_string(offset) + ", " +
                      std::to_string(count) + ") exceeds view of " +
                      std::to_string(length_) + " elements"});
      const std::size_t clamped_offset = std::min(offset, length_);
      return CheckedAccessor(state_, offset_ + clamped_offset,
                             std::min(count, length_ - clamped_offset));
    }
    return CheckedAccessor(state_, offset_ + offset, count);
  }

 private:
  void record(std::size_t global, std::size_t group) const {
    detail::ElementShadow& shadow = state_->shadow[global];
    if constexpr (kIsRead) {
      if (shadow.writer != kNoGroup && shadow.writer != group) {
        state_->monitor->report(
            {.kind = DiagnosticKind::read_write_race,
             .kernel = {},
             .buffer = state_->label,
             .index = global,
             .group_a = shadow.writer,
             .group_b = group,
             .message = "element read by one work-group and written by "
                        "another without synchronisation"});
      }
      if (shadow.reader == kNoGroup) shadow.reader = group;
    } else {
      if (shadow.writer != kNoGroup && shadow.writer != group) {
        state_->monitor->report(
            {.kind = DiagnosticKind::write_write_race,
             .kernel = {},
             .buffer = state_->label,
             .index = global,
             .group_a = shadow.writer,
             .group_b = group,
             .message = "element written by two different work-groups"});
      } else if (shadow.reader != kNoGroup && shadow.reader != group) {
        state_->monitor->report(
            {.kind = DiagnosticKind::read_write_race,
             .kernel = {},
             .buffer = state_->label,
             .index = global,
             .group_a = shadow.reader,
             .group_b = group,
             .message = "element read by one work-group and written by "
                        "another without synchronisation"});
      }
      if (shadow.writer == kNoGroup) shadow.writer = group;
    }
  }

  detail::BufferState<Value>* state_;
  std::size_t offset_;
  std::size_t length_;
};

/// Buffer whose accessors record every access; see the file comment.
template <typename T>
class CheckedBuffer {
 public:
  CheckedBuffer(std::string label, std::size_t count, AccessMonitor& monitor,
                T init = T{})
      : state_(std::make_unique<detail::BufferState<T>>()) {
    state_->label = std::move(label);
    state_->storage.assign(count, init);
    state_->shadow.assign(count, {});
    state_->monitor = &monitor;
  }

  CheckedBuffer(std::string label, std::span<const T> data,
                AccessMonitor& monitor)
      : state_(std::make_unique<detail::BufferState<T>>()) {
    state_->label = std::move(label);
    state_->storage.assign(data.begin(), data.end());
    state_->shadow.assign(data.size(), {});
    state_->monitor = &monitor;
  }

  [[nodiscard]] std::size_t size() const { return state_->storage.size(); }

  /// Uninstrumented host views for filling inputs and reading results.
  [[nodiscard]] std::span<T> host() { return state_->storage; }
  [[nodiscard]] std::span<const T> host() const { return state_->storage; }

  /// Recording accessors handed to kernels.
  [[nodiscard]] CheckedAccessor<const T> read() const {
    return CheckedAccessor<const T>(state_.get(), 0, state_->storage.size());
  }
  [[nodiscard]] CheckedAccessor<T> write() {
    return CheckedAccessor<T>(state_.get(), 0, state_->storage.size());
  }

  /// Forgets all recorded accesses (for reusing a buffer across launches).
  void clear_shadow() { state_->shadow.assign(state_->shadow.size(), {}); }

 private:
  std::unique_ptr<detail::BufferState<T>> state_;
};

}  // namespace aks::check
