#include "check/config_lint.hpp"

#include <algorithm>
#include <sstream>

#include "common/csv.hpp"
#include "common/error.hpp"

namespace aks::check {

namespace {

/// The CSV layer supports no quoting, so cells must not contain commas.
std::string sanitize_cell(std::string text) {
  std::replace(text.begin(), text.end(), ',', ';');
  return text;
}

}  // namespace

LintRule parse_lint_rule(std::string_view name) {
  for (const LintRule rule :
       {LintRule::work_group_size, LintRule::local_memory,
        LintRule::vector_width}) {
    if (to_string(rule) == name) return rule;
  }
  AKS_FAIL("unknown lint rule '" << name << "'");
}

Diagnostic LintFinding::to_diagnostic() const {
  return {.kind = DiagnosticKind::invalid_config,
          .kernel = config,
          .buffer = {},
          .index = config_index,
          .group_a = kNoGroup,
          .group_b = kNoGroup,
          .message = "[" + std::string(to_string(rule)) + "] on " + device +
                     ": " + message};
}

std::vector<bool> LintReport::valid_mask(std::size_t num_configs,
                                         const std::string& device) const {
  std::vector<bool> valid(num_configs, true);
  for (const auto& finding : findings) {
    if (!device.empty() && finding.device != device) continue;
    if (finding.config_index < num_configs) {
      valid[finding.config_index] = false;
    }
  }
  return valid;
}

void LintReport::save_csv(const std::filesystem::path& path) const {
  common::CsvTable table;
  table.header = {"config_index", "config", "device", "rule", "message"};
  // Provenance row so a round-tripped report keeps its sweep dimensions
  // even when there are no findings.
  table.rows.push_back({std::to_string(configs_checked), "#summary",
                        std::to_string(devices_checked), "summary", ""});
  for (const auto& finding : findings) {
    table.rows.push_back({std::to_string(finding.config_index),
                          sanitize_cell(finding.config),
                          sanitize_cell(finding.device),
                          std::string(to_string(finding.rule)),
                          sanitize_cell(finding.message)});
  }
  common::write_csv(path, table);
}

LintReport LintReport::load_csv(const std::filesystem::path& path) {
  const common::CsvTable table = common::read_csv(path);
  const std::size_t idx_col = table.column_index("config_index");
  const std::size_t cfg_col = table.column_index("config");
  const std::size_t dev_col = table.column_index("device");
  const std::size_t rule_col = table.column_index("rule");
  const std::size_t msg_col = table.column_index("message");
  LintReport report;
  for (const auto& row : table.rows) {
    if (row[rule_col] == "summary") {
      report.configs_checked =
          static_cast<std::size_t>(std::stoull(row[idx_col]));
      report.devices_checked =
          static_cast<std::size_t>(std::stoull(row[dev_col]));
      continue;
    }
    LintFinding finding;
    finding.config_index = static_cast<std::size_t>(std::stoull(row[idx_col]));
    finding.config = row[cfg_col];
    finding.device = row[dev_col];
    finding.rule = parse_lint_rule(row[rule_col]);
    finding.message = row[msg_col];
    report.findings.push_back(std::move(finding));
  }
  return report;
}

std::size_t local_memory_footprint_bytes(const gemm::KernelConfig& config) {
  const auto rows = static_cast<std::size_t>(config.wg_rows) *
                    static_cast<std::size_t>(config.row_tile);
  const auto cols = static_cast<std::size_t>(config.wg_cols) *
                    static_cast<std::size_t>(config.col_tile);
  const auto acc = static_cast<std::size_t>(config.acc_size);
  return sizeof(float) * (rows * acc + acc * cols);
}

std::vector<LintFinding> lint_config(const gemm::KernelConfig& config,
                                     std::size_t config_index,
                                     const perf::DeviceSpec& device) {
  std::vector<LintFinding> findings;
  const auto add = [&](LintRule rule, const std::string& message) {
    findings.push_back({.config_index = config_index,
                        .config = config.name(),
                        .device = device.name,
                        .rule = rule,
                        .message = message});
  };

  const int wg_size = config.work_group_size();
  if (wg_size > device.max_work_group_size) {
    std::ostringstream os;
    os << "work-group size " << wg_size << " exceeds device limit "
       << device.max_work_group_size;
    add(LintRule::work_group_size, os.str());
  }

  const std::size_t footprint = local_memory_footprint_bytes(config);
  if (footprint > device.local_memory_bytes) {
    std::ostringstream os;
    os << "staged panels need " << footprint
       << " bytes of local memory; device has " << device.local_memory_bytes;
    add(LintRule::local_memory, os.str());
  }

  // The staging loads along K are emitted as acc_size-wide vectors and the
  // B staging / C store address col_tile contiguous columns; each width
  // must decompose into whole native vectors or fit inside one, or the
  // accesses cannot be emitted as full vectors — scalar fix-up code the
  // kernel family does not have. Both widths go through the same tail
  // predicate the symbolic verifier's capacity check uses (previously only
  // acc_size was linted, so a config whose store width broke the vector
  // tail passed the lint but failed the replay layer).
  const int vec = device.vector_width;
  if (!vector_tail_ok(config.acc_size, vec)) {
    std::ostringstream os;
    os << "accumulator step " << config.acc_size
       << " does not tile into native vector width " << vec;
    add(LintRule::vector_width, os.str());
  }
  if (!vector_tail_ok(config.col_tile, vec)) {
    std::ostringstream os;
    os << "column-tile store width " << config.col_tile
       << " does not tile into native vector width " << vec;
    add(LintRule::vector_width, os.str());
  }
  return findings;
}

LintReport lint_configs(std::span<const gemm::KernelConfig> configs,
                        std::span<const perf::DeviceSpec> devices) {
  LintReport report;
  report.configs_checked = configs.size();
  report.devices_checked = devices.size();
  for (std::size_t i = 0; i < configs.size(); ++i) {
    for (const auto& device : devices) {
      auto findings = lint_config(configs[i], i, device);
      report.findings.insert(report.findings.end(),
                             std::make_move_iterator(findings.begin()),
                             std::make_move_iterator(findings.end()));
    }
  }
  return report;
}

}  // namespace aks::check
