#include "check/lockdep.hpp"

#include <algorithm>
#include <array>
#include <atomic>
#include <cstdlib>
#include <fstream>
#include <map>
#include <mutex>
#include <ostream>
#include <utility>

namespace aks::check::lockdep {

namespace {

// Per-thread held stack. Plain POD so thread exit during static teardown
// never runs a destructor that could touch freed registry state.
struct HeldStack {
  std::uint32_t ids[kMaxHeld];
  std::uint32_t depth = 0;       // entries tracked in ids[]
  std::uint32_t overflow = 0;    // holds past kMaxHeld (counted, untracked)
};
thread_local HeldStack tl_held;

std::atomic<bool> g_enabled{true};

// Process-global recording state. The internal mutex is a *raw* std::mutex
// — instrumenting it would recurse — and is only ever a leaf: nothing is
// acquired while it is held.
struct Registry {
  std::mutex mutex;
  std::vector<std::string> names;                    // by class id
  std::map<std::string, std::uint32_t> ids;
  // First-observation held stacks per edge, keyed (from, to).
  std::map<std::pair<std::uint32_t, std::uint32_t>, std::vector<std::string>>
      witnesses;
  // Held-while-blocking occurrences, keyed (blocked-on id, held-id bitmask).
  std::map<std::pair<std::uint32_t, std::uint64_t>, std::uint64_t> violations;
  // Edge counts and per-class acquisition counts, lock-free on the hot path.
  std::array<std::array<std::atomic<std::uint64_t>, kMaxClasses>, kMaxClasses>
      edge_counts{};
  std::array<std::atomic<std::uint64_t>, kMaxClasses> acquisitions{};

  Registry() {
    // Any binary can dump its final lock-order graph at exit.
    // getenv: read-only queries of variables no aks code ever writes.
    if (std::getenv("AKS_LOCKDEP_OUT") != nullptr) {  // NOLINT(concurrency-mt-unsafe)
      std::atexit([] {
        const char* path = std::getenv("AKS_LOCKDEP_OUT");  // NOLINT(concurrency-mt-unsafe)
        if (path == nullptr) return;
        std::ofstream out(path);
        if (out) write_json(capture(), out);
      });
    }
  }
};

// Intentionally leaked: the AKS_LOCKDEP_OUT atexit dump and instrumentation
// from late static destructors must outlive it. (std::atexit inside the
// constructor body registers *before* the static's own destructor would —
// teardown is LIFO, so a function-local static here would be torn down
// before the dump handler runs. A leaked object has no destructor to race.)
Registry& registry() {
  static Registry* const r = new Registry;
  return *r;
}

std::vector<std::string> held_names_locked(Registry& reg,
                                           const HeldStack& held) {
  std::vector<std::string> names;
  names.reserve(held.depth);
  for (std::uint32_t i = 0; i < held.depth; ++i) {
    const std::uint32_t id = held.ids[i];
    names.push_back(id < reg.names.size() ? reg.names[id] : std::string{});
  }
  return names;
}

void record_edge(Registry& reg, std::uint32_t from, std::uint32_t to) {
  if (reg.edge_counts[from][to].fetch_add(1, std::memory_order_relaxed) == 0) {
    // First observation: capture the held stack as the edge's witness.
    std::lock_guard lock(reg.mutex);
    reg.witnesses.emplace(std::make_pair(from, to),
                          held_names_locked(reg, tl_held));
  }
}

void escape_json(const std::string& s, std::ostream& out) {
  out << '"';
  for (const char c : s) {
    switch (c) {
      case '"': out << "\\\""; break;
      case '\\': out << "\\\\"; break;
      case '\n': out << "\\n"; break;
      case '\r': out << "\\r"; break;
      case '\t': out << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out << "\\u0020";  // other control chars never occur in names
        } else {
          out << c;
        }
    }
  }
  out << '"';
}

/// Tarjan strongly-connected components over the edge graph. Returns the
/// SCC index per class (kMaxClasses for unvisited).
struct SccState {
  std::vector<std::uint32_t> component;
  std::vector<std::vector<std::uint32_t>> members;  // per component, sorted
};

SccState find_sccs(const std::vector<std::vector<std::uint32_t>>& adj) {
  const std::size_t n = adj.size();
  SccState scc;
  scc.component.assign(n, static_cast<std::uint32_t>(n));
  std::vector<std::uint32_t> index(n, 0), lowlink(n, 0);
  std::vector<bool> visited(n, false), on_stack(n, false);
  std::vector<std::uint32_t> stack;
  std::uint32_t next_index = 1;

  // Iterative Tarjan: frame = (node, next edge position).
  struct Frame {
    std::uint32_t node;
    std::size_t edge = 0;
  };
  for (std::uint32_t root = 0; root < n; ++root) {
    if (visited[root]) continue;
    std::vector<Frame> frames{{root, 0}};
    visited[root] = true;
    index[root] = lowlink[root] = next_index++;
    stack.push_back(root);
    on_stack[root] = true;
    while (!frames.empty()) {
      Frame& f = frames.back();
      if (f.edge < adj[f.node].size()) {
        const std::uint32_t next = adj[f.node][f.edge++];
        if (!visited[next]) {
          visited[next] = true;
          index[next] = lowlink[next] = next_index++;
          stack.push_back(next);
          on_stack[next] = true;
          frames.push_back({next, 0});
        } else if (on_stack[next]) {
          lowlink[f.node] = std::min(lowlink[f.node], index[next]);
        }
        continue;
      }
      const std::uint32_t node = f.node;
      frames.pop_back();
      if (!frames.empty()) {
        lowlink[frames.back().node] =
            std::min(lowlink[frames.back().node], lowlink[node]);
      }
      if (lowlink[node] == index[node]) {
        std::vector<std::uint32_t> members;
        std::uint32_t popped;
        do {
          popped = stack.back();
          stack.pop_back();
          on_stack[popped] = false;
          scc.component[popped] =
              static_cast<std::uint32_t>(scc.members.size());
          members.push_back(popped);
        } while (popped != node);
        std::sort(members.begin(), members.end());
        scc.members.push_back(std::move(members));
      }
    }
  }
  return scc;
}

/// A concrete closed walk inside an SCC, starting/ending at its smallest
/// member — the human-readable shape of the deadlock potential.
std::vector<std::uint32_t> representative_cycle(
    const std::vector<std::vector<std::uint32_t>>& adj,
    const std::vector<std::uint32_t>& members, std::uint32_t component,
    const SccState& scc) {
  const std::uint32_t start = members.front();
  // DFS restricted to the component, looking for a path back to `start`.
  std::vector<std::uint32_t> path{start};
  std::vector<std::size_t> edge_pos{0};
  std::vector<bool> on_path(adj.size(), false);
  on_path[start] = true;
  while (!path.empty()) {
    const std::uint32_t node = path.back();
    bool advanced = false;
    while (edge_pos.back() < adj[node].size()) {
      const std::uint32_t next = adj[node][edge_pos.back()++];
      if (scc.component[next] != component) continue;
      if (next == start && path.size() > 0) return path;
      if (on_path[next]) continue;
      path.push_back(next);
      edge_pos.push_back(0);
      on_path[next] = true;
      advanced = true;
      break;
    }
    if (!advanced && path.back() == node) {
      on_path[node] = false;
      path.pop_back();
      edge_pos.pop_back();
    }
  }
  return {start};  // unreachable for a genuine SCC; defensive
}

}  // namespace

std::uint32_t register_class(const char* name) {
  Registry& reg = registry();
  std::lock_guard lock(reg.mutex);
  const auto it = reg.ids.find(name);
  if (it != reg.ids.end()) return it->second;
  // Last slot is reserved for the overflow class once the table fills, so
  // ids stay in range no matter how many classes a process invents.
  std::string effective = name;
  if (reg.names.size() + 1 >= kMaxClasses) {
    effective = "lockdep.overflow";
    const auto overflow = reg.ids.find(effective);
    if (overflow != reg.ids.end()) return overflow->second;
  }
  const auto id = static_cast<std::uint32_t>(reg.names.size());
  reg.names.push_back(effective);
  reg.ids.emplace(std::move(effective), id);
  return id;
}

std::string class_name(std::uint32_t cls) {
  Registry& reg = registry();
  std::lock_guard lock(reg.mutex);
  return cls < reg.names.size() ? reg.names[cls] : std::string{};
}

void on_acquire(std::uint32_t cls) {
  if (!g_enabled.load(std::memory_order_relaxed) || cls >= kMaxClasses) return;
  Registry& reg = registry();
  reg.acquisitions[cls].fetch_add(1, std::memory_order_relaxed);
  HeldStack& held = tl_held;
  for (std::uint32_t i = 0; i < held.depth; ++i) {
    record_edge(reg, held.ids[i], cls);
  }
  if (held.depth < kMaxHeld) {
    held.ids[held.depth++] = cls;
  } else {
    ++held.overflow;
  }
}

void on_release(std::uint32_t cls) {
  if (cls >= kMaxClasses) return;
  HeldStack& held = tl_held;
  if (held.overflow > 0) {
    --held.overflow;
    return;
  }
  // Locks usually release LIFO; tolerate out-of-order unlocks by removing
  // the most recent hold of the class.
  for (std::uint32_t i = held.depth; i > 0; --i) {
    if (held.ids[i - 1] == cls) {
      for (std::uint32_t j = i; j < held.depth; ++j) {
        held.ids[j - 1] = held.ids[j];
      }
      --held.depth;
      return;
    }
  }
}

void on_wait_block(std::uint32_t cls) {
  if (!g_enabled.load(std::memory_order_relaxed) || cls >= kMaxClasses) return;
  const HeldStack& held = tl_held;
  std::uint64_t other_mask = 0;
  for (std::uint32_t i = 0; i < held.depth; ++i) {
    if (held.ids[i] != cls) other_mask |= std::uint64_t{1} << held.ids[i];
  }
  if (other_mask == 0) return;
  Registry& reg = registry();
  std::lock_guard lock(reg.mutex);
  ++reg.violations[{cls, other_mask}];
}

std::vector<std::uint32_t> held_by_this_thread() {
  const HeldStack& held = tl_held;
  return {held.ids, held.ids + held.depth};
}

void set_enabled(bool enabled) {
  g_enabled.store(enabled, std::memory_order_relaxed);
}

bool enabled() { return g_enabled.load(std::memory_order_relaxed); }

void reset() {
  Registry& reg = registry();
  std::lock_guard lock(reg.mutex);
  for (auto& row : reg.edge_counts) {
    for (auto& cell : row) cell.store(0, std::memory_order_relaxed);
  }
  for (auto& acq : reg.acquisitions) acq.store(0, std::memory_order_relaxed);
  reg.witnesses.clear();
  reg.violations.clear();
  tl_held = HeldStack{};
}

Report capture() {
  Registry& reg = registry();
  Report report;
  std::lock_guard lock(reg.mutex);
  const std::size_t n = reg.names.size();

  report.classes.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    ClassInfo info;
    info.id = static_cast<std::uint32_t>(i);
    info.name = reg.names[i];
    info.acquisitions = reg.acquisitions[i].load(std::memory_order_relaxed);
    report.classes.push_back(std::move(info));
  }

  std::vector<std::vector<std::uint32_t>> adj(n);
  for (std::uint32_t from = 0; from < n; ++from) {
    for (std::uint32_t to = 0; to < n; ++to) {
      const std::uint64_t count =
          reg.edge_counts[from][to].load(std::memory_order_relaxed);
      if (count == 0) continue;
      adj[from].push_back(to);
      EdgeInfo edge;
      edge.from = from;
      edge.to = to;
      edge.from_name = reg.names[from];
      edge.to_name = reg.names[to];
      edge.count = count;
      const auto witness = reg.witnesses.find({from, to});
      if (witness != reg.witnesses.end()) edge.witness = witness->second;
      report.edges.push_back(std::move(edge));
    }
  }

  const SccState scc = find_sccs(adj);
  for (std::uint32_t c = 0; c < scc.members.size(); ++c) {
    const auto& members = scc.members[c];
    const bool self_loop =
        members.size() == 1 &&
        reg.edge_counts[members[0]][members[0]].load(
            std::memory_order_relaxed) > 0;
    if (members.size() < 2 && !self_loop) continue;
    CycleInfo cycle;
    cycle.classes = members.size() == 1
                        ? std::vector<std::uint32_t>{members[0]}
                        : representative_cycle(adj, members, c, scc);
    for (const std::uint32_t id : cycle.classes) {
      cycle.names.push_back(reg.names[id]);
    }
    report.cycles.push_back(std::move(cycle));
  }
  std::sort(report.cycles.begin(), report.cycles.end(),
            [](const CycleInfo& a, const CycleInfo& b) {
              return a.classes < b.classes;
            });

  for (const auto& [key, count] : reg.violations) {
    ViolationInfo violation;
    violation.blocked_on =
        key.first < n ? reg.names[key.first] : std::string{};
    for (std::uint32_t id = 0; id < kMaxClasses; ++id) {
      if ((key.second >> id) & 1u) {
        violation.held.push_back(id < n ? reg.names[id] : std::string{});
      }
    }
    violation.count = count;
    report.held_while_blocking.push_back(std::move(violation));
  }
  return report;
}

void write_dot(const Report& report, std::ostream& out) {
  // Edges inside any reported cycle render red so the inversion is visible
  // at a glance in large graphs.
  std::vector<std::pair<std::uint32_t, std::uint32_t>> hot;
  for (const CycleInfo& cycle : report.cycles) {
    for (std::size_t i = 0; i < cycle.classes.size(); ++i) {
      hot.emplace_back(cycle.classes[i],
                       cycle.classes[(i + 1) % cycle.classes.size()]);
    }
  }
  out << "digraph lockdep {\n  rankdir=LR;\n"
      << "  node [shape=box, fontname=\"monospace\"];\n";
  for (const ClassInfo& cls : report.classes) {
    out << "  \"" << cls.name << "\" [label=\"" << cls.name << "\\n"
        << cls.acquisitions << " acq\"];\n";
  }
  for (const EdgeInfo& edge : report.edges) {
    const bool cyclic =
        std::find(hot.begin(), hot.end(),
                  std::make_pair(edge.from, edge.to)) != hot.end();
    out << "  \"" << edge.from_name << "\" -> \"" << edge.to_name
        << "\" [label=\"" << edge.count << "\"";
    if (cyclic) out << ", color=red, penwidth=2";
    out << "];\n";
  }
  out << "}\n";
}

void write_json(const Report& report, std::ostream& out) {
  out << "{\n  \"classes\": [";
  for (std::size_t i = 0; i < report.classes.size(); ++i) {
    const ClassInfo& cls = report.classes[i];
    out << (i == 0 ? "" : ",") << "\n    {\"id\": " << cls.id
        << ", \"name\": ";
    escape_json(cls.name, out);
    out << ", \"acquisitions\": " << cls.acquisitions << "}";
  }
  out << "\n  ],\n  \"edges\": [";
  for (std::size_t i = 0; i < report.edges.size(); ++i) {
    const EdgeInfo& edge = report.edges[i];
    out << (i == 0 ? "" : ",") << "\n    {\"from\": ";
    escape_json(edge.from_name, out);
    out << ", \"to\": ";
    escape_json(edge.to_name, out);
    out << ", \"count\": " << edge.count << ", \"witness\": [";
    for (std::size_t w = 0; w < edge.witness.size(); ++w) {
      if (w != 0) out << ", ";
      escape_json(edge.witness[w], out);
    }
    out << "]}";
  }
  out << "\n  ],\n  \"cycles\": [";
  for (std::size_t i = 0; i < report.cycles.size(); ++i) {
    out << (i == 0 ? "" : ",") << "\n    [";
    const CycleInfo& cycle = report.cycles[i];
    for (std::size_t c = 0; c < cycle.names.size(); ++c) {
      if (c != 0) out << ", ";
      escape_json(cycle.names[c], out);
    }
    out << "]";
  }
  out << "\n  ],\n  \"held_while_blocking\": [";
  for (std::size_t i = 0; i < report.held_while_blocking.size(); ++i) {
    const ViolationInfo& violation = report.held_while_blocking[i];
    out << (i == 0 ? "" : ",") << "\n    {\"blocked_on\": ";
    escape_json(violation.blocked_on, out);
    out << ", \"held\": [";
    for (std::size_t h = 0; h < violation.held.size(); ++h) {
      if (h != 0) out << ", ";
      escape_json(violation.held[h], out);
    }
    out << "], \"count\": " << violation.count << "}";
  }
  out << "\n  ]\n}\n";
}

}  // namespace aks::check::lockdep
