// Static config lint: validates kernel configurations against device specs.
//
// The pruning and selection pipelines assume every point of the 640-element
// configuration space is launchable on the target device; a config that
// exceeds a device execution limit would either fail to launch or silently
// fall back, poisoning the tuning dataset. This pass checks each
// (config, device) pair against three mechanical rules — no benchmark run
// required:
//
//   work_group_size  — wg_rows * wg_cols must not exceed the device's
//                      max_work_group_size launch limit;
//   local_memory     — the work-group's staged operand panels must fit the
//                      device's per-group local memory;
//   vector_width     — the vectorised K-step (acc_size) must tile into, or
//                      be covered by, the device's native load vector, or
//                      the staging loads cannot be emitted as full vectors.
//
// The report is machine-readable (CSV round-trip) and collapses to a
// per-config validity mask that `select::ValidityFilteredPruner` consumes,
// so invalid (config, device) points never enter a pruned library.
#pragma once

#include <filesystem>
#include <span>
#include <vector>

#include "check/diagnostics.hpp"
#include "gemm/config.hpp"
#include "perfmodel/device_spec.hpp"

namespace aks::check {

/// Machine-matchable lint rule identifiers.
enum class LintRule {
  work_group_size,
  local_memory,
  vector_width,
};

[[nodiscard]] constexpr std::string_view to_string(LintRule rule) {
  switch (rule) {
    case LintRule::work_group_size: return "work_group_size";
    case LintRule::local_memory: return "local_memory";
    case LintRule::vector_width: return "vector_width";
  }
  return "unknown";
}

/// Parses a rule name written by to_string(); throws common::Error.
[[nodiscard]] LintRule parse_lint_rule(std::string_view name);

struct LintFinding {
  /// Position of the config in the linted sequence (canonical index when
  /// linting the full registry).
  std::size_t config_index = 0;
  std::string config;  ///< KernelConfig::name()
  std::string device;  ///< DeviceSpec::name
  LintRule rule = LintRule::work_group_size;
  std::string message;

  /// View as the subsystem-wide diagnostic type (kind invalid_config).
  [[nodiscard]] Diagnostic to_diagnostic() const;
};

struct LintReport {
  std::size_t configs_checked = 0;
  std::size_t devices_checked = 0;
  std::vector<LintFinding> findings;

  [[nodiscard]] bool clean() const { return findings.empty(); }

  /// Per-config validity over `num_configs` configs: false when the config
  /// has any finding on `device` (or on any device when `device` is empty).
  [[nodiscard]] std::vector<bool> valid_mask(
      std::size_t num_configs, const std::string& device = {}) const;

  /// CSV round-trip (config_index,config,device,rule,message).
  void save_csv(const std::filesystem::path& path) const;
  [[nodiscard]] static LintReport load_csv(const std::filesystem::path& path);
};

/// Bytes of work-group local memory the config's staged operand panels
/// need: an (wg_rows*row_tile) x acc_size A panel and an acc_size x
/// (wg_cols*col_tile) B panel of floats.
[[nodiscard]] std::size_t local_memory_footprint_bytes(
    const gemm::KernelConfig& config);

/// True when a `width`-wide staged access decomposes into whole native
/// vectors (width >= native) or fits inside one (width < native and
/// divides it). The single tail predicate shared by the vector_width lint
/// rule and the symbolic verifier's capacity-vector-width check, so the
/// two static layers can never disagree.
[[nodiscard]] constexpr bool vector_tail_ok(int width, int native) {
  if (native <= 0 || width <= 0) return true;
  return width % native == 0 || native % width == 0;
}

/// Lints one (config, device) pair; returns the violated rules (empty when
/// the pair is valid).
[[nodiscard]] std::vector<LintFinding> lint_config(
    const gemm::KernelConfig& config, std::size_t config_index,
    const perf::DeviceSpec& device);

/// Sweeps configs x devices. Pass `gemm::enumerate_configs()` to lint the
/// full registry space.
[[nodiscard]] LintReport lint_configs(
    std::span<const gemm::KernelConfig> configs,
    std::span<const perf::DeviceSpec> devices);

}  // namespace aks::check
