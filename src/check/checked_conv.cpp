#include "check/checked_conv.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <sstream>

#include "common/rng.hpp"
#include "conv/im2col.hpp"
#include "conv/winograd.hpp"

namespace aks::check {

namespace {

/// Winograd transforms lose more precision than plain summation-order
/// error; the conv oracle comparison uses a correspondingly wider band
/// (matching the conv test suite's expectations).
constexpr double kConvTolerance = 5e-3;

void fill_uniform(std::span<float> out, common::Rng& rng) {
  for (auto& v : out) v = static_cast<float>(rng.uniform(-1.0, 1.0));
}

/// Recording flat-GEMM launcher for the im2col hook: copies operands into
/// checked buffers, replays the kernel, copies the result back out.
conv::GemmLaunchFn checked_gemm_launch(AccessMonitor& monitor) {
  return [&monitor](syclrt::Queue& queue, const gemm::KernelConfig& config,
                    std::span<const float> a, std::span<const float> b,
                    std::span<float> c, const gemm::GemmShape& shape) {
    CheckedBuffer<float> a_buf("A", a, monitor);
    CheckedBuffer<float> b_buf("B", b, monitor);
    CheckedBuffer<float> c_buf("C", c.size(), monitor);
    const auto event = launch_checked_gemm(queue, config, a_buf.read(),
                                           b_buf.read(), c_buf.write(), shape);
    const auto result = c_buf.host();
    std::copy(result.begin(), result.end(), c.begin());
    return event;
  };
}

/// Recording batched launcher for the Winograd hooks.
conv::BatchedGemmLaunchFn checked_batched_launch(AccessMonitor& monitor) {
  return [&monitor](syclrt::Queue& queue, const gemm::KernelConfig& config,
                    std::span<const float> a, std::span<const float> b,
                    std::span<float> c, const gemm::GemmShape& shape,
                    std::size_t batch) {
    CheckedBuffer<float> a_buf("A", a, monitor);
    CheckedBuffer<float> b_buf("B", b, monitor);
    CheckedBuffer<float> c_buf("C", c.size(), monitor);
    const auto event = launch_checked_batched_gemm(
        queue, config, a_buf.read(), b_buf.read(), c_buf.write(), shape,
        batch);
    const auto result = c_buf.host();
    std::copy(result.begin(), result.end(), c.begin());
    return event;
  };
}

template <typename RunLowering>
CheckResult check_conv(const std::string& label,
                       const gemm::KernelConfig& config,
                       const conv::ConvShape& shape,
                       const RunLowering& run_lowering) {
  AccessMonitor monitor(label);

  const std::uint64_t seed =
      std::uint64_t{0xC0DEC0DE} ^
      (static_cast<std::uint64_t>(shape.input_size()) *
       std::uint64_t{1315423911}) ^
      static_cast<std::uint64_t>(config.work_group_size());
  common::Rng rng(seed);
  std::vector<float> input(shape.input_size());
  std::vector<float> filter(shape.filter_size());
  fill_uniform(input, rng);
  fill_uniform(filter, rng);

  std::vector<float> expected(shape.output_size());
  conv::direct_conv2d(input, filter, expected, shape);

  std::vector<float> actual(shape.output_size(), 0.0f);
  syclrt::Queue queue;
  queue.set_deterministic_replay(true);
  run_lowering(queue, monitor, input, filter, actual);

  CheckResult result;
  std::size_t worst_index = 0;
  for (std::size_t i = 0; i < actual.size(); ++i) {
    const double err = std::abs(static_cast<double>(actual[i]) -
                                static_cast<double>(expected[i]));
    if (err > result.max_abs_error) {
      result.max_abs_error = err;
      worst_index = i;
    }
  }
  if (result.max_abs_error > kConvTolerance ||
      !std::isfinite(result.max_abs_error)) {
    result.numerics_ok = false;
    std::ostringstream os;
    os << "conv output diverges from direct_conv2d by " << result.max_abs_error
       << " (tolerance " << kConvTolerance << ")";
    monitor.report({.kind = DiagnosticKind::numeric_divergence,
                    .kernel = {},
                    .buffer = "output",
                    .index = worst_index,
                    .group_a = kNoGroup,
                    .group_b = kNoGroup,
                    .message = os.str()});
  }
  result.findings = monitor.findings();
  result.dropped_findings = monitor.dropped();
  return result;
}

}  // namespace

CheckResult check_im2col_conv(const gemm::KernelConfig& config,
                              const conv::ConvShape& shape) {
  return check_conv(
      "im2col+" + config.name(), config, shape,
      [&config, &shape](syclrt::Queue& queue, AccessMonitor& monitor,
                        std::span<const float> input,
                        std::span<const float> filter,
                        std::span<float> output) {
        conv::im2col_conv2d(queue, config, input, filter, output, shape,
                            checked_gemm_launch(monitor));
      });
}

CheckResult check_winograd_conv(const gemm::KernelConfig& config,
                                const conv::ConvShape& shape) {
  return check_conv(
      "winograd+" + config.name(), config, shape,
      [&config, &shape](syclrt::Queue& queue, AccessMonitor& monitor,
                        std::span<const float> input,
                        std::span<const float> filter,
                        std::span<float> output) {
        conv::winograd_conv2d(queue, config, input, filter, output, shape,
                              checked_batched_launch(monitor));
      });
}

CheckResult check_winograd4_conv(const gemm::KernelConfig& config,
                                 const conv::ConvShape& shape) {
  return check_conv(
      "winograd4+" + config.name(), config, shape,
      [&config, &shape](syclrt::Queue& queue, AccessMonitor& monitor,
                        std::span<const float> input,
                        std::span<const float> filter,
                        std::span<float> output) {
        conv::winograd4_conv2d(queue, config, input, filter, output, shape,
                               checked_batched_launch(monitor));
      });
}

std::vector<conv::ConvShape> default_conv_corpus() {
  return {
      // 3x3 stride-1 padded: all three lowerings apply, ragged 2x2 tiles.
      {.batch = 1, .in_height = 9, .in_width = 7, .in_channels = 5,
       .out_channels = 6, .kernel = 3, .stride = 1, .padding = 1},
      // Unpadded 3x3 with batch: Winograd tile edges land mid-image.
      {.batch = 2, .in_height = 8, .in_width = 8, .in_channels = 3,
       .out_channels = 4, .kernel = 3, .stride = 1, .padding = 0},
      // Strided 5x5: im2col only.
      {.batch = 1, .in_height = 11, .in_width = 11, .in_channels = 4,
       .out_channels = 3, .kernel = 5, .stride = 2, .padding = 2},
  };
}

RegistryCheckSummary check_conv_lowerings(std::size_t config_stride) {
  RegistryCheckSummary summary;
  if (config_stride == 0) config_stride = 1;
  const auto& configs = gemm::enumerate_configs();
  const auto corpus = default_conv_corpus();

  const auto absorb = [&summary](const CheckResult& result) {
    ++summary.launches;
    summary.dropped_findings += result.dropped_findings;
    summary.max_abs_error =
        std::max(summary.max_abs_error, result.max_abs_error);
    summary.findings.insert(summary.findings.end(), result.findings.begin(),
                            result.findings.end());
  };

  for (std::size_t i = 0; i < configs.size(); i += config_stride) {
    const auto& config = configs[i];
    ++summary.configs_checked;
    for (const auto& shape : corpus) {
      absorb(check_im2col_conv(config, shape));
      if (conv::winograd_applicable(shape)) {
        absorb(check_winograd_conv(config, shape));
        absorb(check_winograd4_conv(config, shape));
      }
    }
  }
  return summary;
}

}  // namespace aks::check
