#include "faults/fault_plan.hpp"

#include <sstream>
#include <vector>

#include "common/error.hpp"
#include "common/strings.hpp"

namespace aks::faults {

const char* to_string(Site site) {
  switch (site) {
    case Site::kKernelLaunch: return "kernel-launch";
    case Site::kHostTiming: return "host-timing";
    case Site::kDatasetRow: return "dataset-row";
    case Site::kWarmUpTrial: return "warmup-trial";
    case Site::kStoreWrite: return "store-write";
  }
  return "unknown";
}

const char* to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::kNone: return "none";
    case FaultKind::kLaunchFailure: return "launch-failure";
    case FaultKind::kHang: return "hang";
    case FaultKind::kTimingOutlier: return "timing-outlier";
    case FaultKind::kTimingNan: return "timing-nan";
    case FaultKind::kCorruptRow: return "corrupt-row";
    case FaultKind::kWriteFailure: return "write-failure";
    case FaultKind::kTornWrite: return "torn-write";
  }
  return "unknown";
}

bool FaultPlan::any_active() const {
  for (const auto& rates : sites) {
    if (rates.total() > 0.0) return true;
  }
  return false;
}

FaultPlan FaultPlan::none() { return FaultPlan{}; }

FaultPlan FaultPlan::timing_noise_heavy(double rate, std::uint64_t seed) {
  AKS_CHECK(rate >= 0.0 && rate <= 1.0, "fault rate must be in [0,1]");
  FaultPlan plan;
  plan.seed = seed;
  plan.at(Site::kHostTiming).timing_outlier = 0.8 * rate;
  plan.at(Site::kHostTiming).timing_nan = 0.2 * rate;
  plan.at(Site::kWarmUpTrial).timing_outlier = 0.8 * rate;
  plan.at(Site::kWarmUpTrial).timing_nan = 0.2 * rate;
  plan.at(Site::kDatasetRow).corrupt_row = 0.1 * rate;
  return plan;
}

FaultPlan FaultPlan::launch_failure_heavy(double rate, std::uint64_t seed) {
  AKS_CHECK(rate >= 0.0 && rate <= 1.0, "fault rate must be in [0,1]");
  FaultPlan plan;
  plan.seed = seed;
  plan.at(Site::kKernelLaunch).launch_failure = 0.8 * rate;
  plan.at(Site::kKernelLaunch).hang = 0.2 * rate;
  plan.at(Site::kWarmUpTrial).launch_failure = 0.8 * rate;
  plan.at(Site::kWarmUpTrial).hang = 0.2 * rate;
  return plan;
}

FaultPlan FaultPlan::mixed(double rate, std::uint64_t seed) {
  AKS_CHECK(rate >= 0.0 && rate <= 1.0, "fault rate must be in [0,1]");
  FaultPlan plan;
  plan.seed = seed;
  plan.at(Site::kKernelLaunch).launch_failure = 0.4 * rate;
  plan.at(Site::kKernelLaunch).hang = 0.1 * rate;
  plan.at(Site::kHostTiming).timing_outlier = 0.35 * rate;
  plan.at(Site::kHostTiming).timing_nan = 0.15 * rate;
  plan.at(Site::kWarmUpTrial).launch_failure = 0.5 * rate;
  plan.at(Site::kWarmUpTrial).timing_outlier = 0.35 * rate;
  plan.at(Site::kWarmUpTrial).timing_nan = 0.15 * rate;
  plan.at(Site::kDatasetRow).corrupt_row = 0.15 * rate;
  return plan;
}

namespace {

double parse_rate(const std::string& value, const std::string& key) {
  double rate = 0.0;
  try {
    rate = std::stod(value);
  } catch (const std::exception&) {
    AKS_FAIL("fault plan: '" << key << "' needs a number, got '" << value
                             << "'");
  }
  AKS_CHECK(rate >= 0.0, "fault plan: '" << key << "' must be >= 0");
  return rate;
}

}  // namespace

FaultPlan FaultPlan::parse(const std::string& spec) {
  const std::string trimmed{common::trim(spec)};
  AKS_CHECK(!trimmed.empty(), "empty fault plan spec");

  // Canned name, optionally with an "@rate" suffix.
  const auto make_canned =
      [](const std::string& name, double rate) -> FaultPlan {
    if (name == "none") return FaultPlan::none();
    if (name == "timing-noise-heavy") return timing_noise_heavy(rate);
    if (name == "launch-failure-heavy") return launch_failure_heavy(rate);
    if (name == "mixed") return mixed(rate);
    AKS_FAIL("unknown fault plan '"
             << name
             << "' (none | timing-noise-heavy | launch-failure-heavy | "
                "mixed | key=value,...)");
  };
  if (trimmed.find('=') == std::string::npos) {
    const auto at = trimmed.find('@');
    if (at == std::string::npos) return make_canned(trimmed, 0.3);
    const double rate = parse_rate(trimmed.substr(at + 1), "rate");
    AKS_CHECK(rate <= 1.0, "fault plan rate must be <= 1");
    return make_canned(trimmed.substr(0, at), rate);
  }

  FaultPlan plan;
  for (const std::string& part : common::split(trimmed, ',')) {
    const std::string item{common::trim(part)};
    if (item.empty()) continue;
    const auto eq = item.find('=');
    AKS_CHECK(eq != std::string::npos, "fault plan: expected key=value, got '"
                                           << item << "'");
    const std::string key{common::trim(item.substr(0, eq))};
    const std::string value{common::trim(item.substr(eq + 1))};
    if (key == "seed") {
      plan.seed = std::stoull(value);
    } else if (key == "launch") {
      plan.at(Site::kKernelLaunch).launch_failure = parse_rate(value, key);
    } else if (key == "hang") {
      plan.at(Site::kKernelLaunch).hang = parse_rate(value, key);
    } else if (key == "outlier") {
      const double rate = parse_rate(value, key);
      plan.at(Site::kHostTiming).timing_outlier = rate;
      plan.at(Site::kWarmUpTrial).timing_outlier = rate;
    } else if (key == "nan") {
      const double rate = parse_rate(value, key);
      plan.at(Site::kHostTiming).timing_nan = rate;
      plan.at(Site::kWarmUpTrial).timing_nan = rate;
    } else if (key == "row") {
      plan.at(Site::kDatasetRow).corrupt_row = parse_rate(value, key);
    } else if (key == "warmup") {
      plan.at(Site::kWarmUpTrial).launch_failure = parse_rate(value, key);
    } else if (key == "store-write") {
      plan.at(Site::kStoreWrite).write_failure = parse_rate(value, key);
    } else if (key == "store-torn") {
      plan.at(Site::kStoreWrite).torn_write = parse_rate(value, key);
    } else if (key == "outlier-min") {
      plan.outlier_min_factor = parse_rate(value, key);
    } else if (key == "outlier-max") {
      plan.outlier_max_factor = parse_rate(value, key);
    } else if (key == "hang-ms") {
      plan.hang_seconds = parse_rate(value, key) * 1e-3;
    } else {
      AKS_FAIL("fault plan: unknown key '" << key << "'");
    }
  }
  AKS_CHECK(plan.outlier_min_factor > 1.0 &&
                plan.outlier_max_factor >= plan.outlier_min_factor,
            "fault plan: need 1 < outlier-min <= outlier-max");
  for (const auto& rates : plan.sites) {
    AKS_CHECK(rates.total() <= 1.0,
              "fault plan: per-site rates must sum to <= 1");
  }
  return plan;
}

std::string FaultPlan::to_string() const {
  std::ostringstream os;
  os << "seed=" << seed;
  const auto& launch = at(Site::kKernelLaunch);
  if (launch.launch_failure > 0.0) os << ",launch=" << launch.launch_failure;
  if (launch.hang > 0.0) os << ",hang=" << launch.hang;
  const auto& timing = at(Site::kHostTiming);
  if (timing.timing_outlier > 0.0) os << ",outlier=" << timing.timing_outlier;
  if (timing.timing_nan > 0.0) os << ",nan=" << timing.timing_nan;
  const auto& row = at(Site::kDatasetRow);
  if (row.corrupt_row > 0.0) os << ",row=" << row.corrupt_row;
  const auto& warmup = at(Site::kWarmUpTrial);
  if (warmup.launch_failure > 0.0) os << ",warmup=" << warmup.launch_failure;
  const auto& store = at(Site::kStoreWrite);
  if (store.write_failure > 0.0) os << ",store-write=" << store.write_failure;
  if (store.torn_write > 0.0) os << ",store-torn=" << store.torn_write;
  return os.str();
}

}  // namespace aks::faults
