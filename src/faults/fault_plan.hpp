// Deterministic fault-injection plans — what can go wrong, where, how often.
//
// The benchmark pipeline (and everything downstream of it: PCA, pruning,
// runtime selection) rests on trusted timings. A FaultPlan describes a
// reproducible adversary for that trust: per injection *site* (kernel
// launch, host timing sample, dataset row assembly, warm-up trial) it gives
// the probability of each fault *kind* the site can physically exhibit:
//
//   launch failure — the driver rejects the kernel launch (bad binary,
//                    out-of-resources, lost device); surfaces as an
//                    exception at the launch site;
//   hang           — the kernel never completes; the watchdog kills it at a
//                    deadline, so the caller loses `hang_seconds` of wall
//                    time and then sees an exception;
//   timing outlier — a measurement lands far from the true value (clock
//                    migration, frequency ramp, co-tenant interference);
//                    the sample is multiplied by a large factor, slow or —
//                    more dangerous for best-of-N reductions — fast;
//   timing NaN     — the measurement is lost entirely (overflowed counter,
//                    failed event query);
//   corrupt row    — a dataset record is damaged in flight (truncated CSV
//                    write, bit-flipped cache line); the row's cells turn
//                    non-finite.
//   write failure  — a store append fails outright (disk full, EIO); the
//                    journal write raises an error and no bytes land;
//   torn write     — the process dies mid-append (power loss, SIGKILL);
//                    only a prefix of the record reaches the file, which a
//                    reload must detect and drop.
//
// Every decision is a pure function of (plan seed, site, caller-supplied
// key, draw index) — see injector.hpp — so the same plan and seed yield a
// bit-identical fault sequence regardless of thread interleaving. Any
// failure CI finds is replayable locally with `aks_tune --fault-plan` or
// the AKS_FAULT_PLAN environment variable.
#pragma once

#include <array>
#include <cstdint>
#include <string>

namespace aks::faults {

/// Where a fault can be injected. Each site is armed explicitly by the code
/// path that owns recovery for it (see the degradation contract in
/// DESIGN.md); un-armed code never observes injected faults.
enum class Site : std::uint32_t {
  kKernelLaunch = 0,  ///< syclrt::Queue submission / simulated launch.
  kHostTiming = 1,    ///< one timing sample in dataset/benchmark_runner.
  kDatasetRow = 2,    ///< one assembled dataset row (CSV record).
  kWarmUpTrial = 3,   ///< one online-tuner candidate trial.
  kStoreWrite = 4,    ///< one selection-store journal record append.
};
inline constexpr std::size_t kNumSites = 5;

[[nodiscard]] const char* to_string(Site site);

enum class FaultKind : std::uint32_t {
  kNone = 0,
  kLaunchFailure,
  kHang,
  kTimingOutlier,
  kTimingNan,
  kCorruptRow,
  kWriteFailure,
  kTornWrite,
};

[[nodiscard]] const char* to_string(FaultKind kind);

/// One injected fault. `magnitude` is the outlier multiplier for
/// kTimingOutlier (may be < 1: an impossibly fast sample), the simulated
/// hang duration in seconds for kHang, and the fraction of the record that
/// lands on disk before the simulated crash for kTornWrite (in [0, 1));
/// 1.0 otherwise.
struct Fault {
  FaultKind kind = FaultKind::kNone;
  double magnitude = 1.0;

  explicit operator bool() const { return kind != FaultKind::kNone; }
};

/// Per-site fault probabilities. Kinds that make no physical sense at a
/// site are simply left at zero by the canned plans; the injector draws
/// whatever the table says.
struct SiteRates {
  double launch_failure = 0.0;
  double hang = 0.0;
  double timing_outlier = 0.0;
  double timing_nan = 0.0;
  double corrupt_row = 0.0;
  double write_failure = 0.0;
  double torn_write = 0.0;

  [[nodiscard]] double total() const {
    return launch_failure + hang + timing_outlier + timing_nan + corrupt_row +
           write_failure + torn_write;
  }
};

struct FaultPlan {
  std::uint64_t seed = 42;
  std::array<SiteRates, kNumSites> sites{};
  /// Outlier multipliers are log-uniform in [min, max]; half the draws are
  /// inverted (fast outliers) to attack best-of-N reductions.
  double outlier_min_factor = 4.0;
  double outlier_max_factor = 64.0;
  /// Simulated hang duration: the deadline at which the watchdog kills the
  /// launch. Kept small so fault-matrix runs stay fast.
  double hang_seconds = 1e-4;

  [[nodiscard]] SiteRates& at(Site site) {
    return sites[static_cast<std::size_t>(site)];
  }
  [[nodiscard]] const SiteRates& at(Site site) const {
    return sites[static_cast<std::size_t>(site)];
  }

  /// True when any site has a non-zero rate.
  [[nodiscard]] bool any_active() const;
  /// True when `site` has a non-zero rate (consumers use this to keep the
  /// fault-free fast path bit-identical to the un-instrumented build).
  [[nodiscard]] bool active(Site site) const { return at(site).total() > 0.0; }

  /// All rates zero: installs over an environment plan to pin a test to
  /// fault-free behaviour.
  [[nodiscard]] static FaultPlan none();
  /// Canned plans (the CI fault matrix). `rate` is the headline injection
  /// probability; the mix across kinds is fixed per plan.
  [[nodiscard]] static FaultPlan timing_noise_heavy(double rate = 0.3,
                                                    std::uint64_t seed = 42);
  [[nodiscard]] static FaultPlan launch_failure_heavy(double rate = 0.3,
                                                      std::uint64_t seed = 42);
  [[nodiscard]] static FaultPlan mixed(double rate = 0.3,
                                       std::uint64_t seed = 42);

  /// Parses a plan spec:
  ///   "none" | "timing-noise-heavy" | "launch-failure-heavy" | "mixed",
  ///   optionally "@<rate>" (e.g. "mixed@0.3"), or a comma-separated
  ///   key=value list: seed, launch, hang, outlier, nan, row, warmup,
  ///   store-write, store-torn (probabilities at the natural site of each
  ///   kind), outlier-min, outlier-max, hang-ms. Throws common::Error on
  ///   malformed input.
  [[nodiscard]] static FaultPlan parse(const std::string& spec);

  /// Canonical key=value form (plans expressible in the key grammar
  /// round-trip through parse()).
  [[nodiscard]] std::string to_string() const;
};

}  // namespace aks::faults
