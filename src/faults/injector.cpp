#include "faults/injector.hpp"

#include <chrono>
#include <cmath>
#include <cstdlib>
#include <thread>

#include "common/sync.hpp"
#include "common/thread_annotations.hpp"
#include "trace/trace.hpp"

namespace aks::faults {

namespace {

// Global plan slot. Guarded by a mutex on install; probes copy the
// shared_ptr under the same mutex — cheap next to the model evaluation or
// kernel run every probe sits beside. The bool flag keeps the common
// no-plan case to one relaxed atomic load with no locking at all.
aks::Mutex g_plan_mutex{"faults.plan"};
std::shared_ptr<const FaultPlan> g_plan AKS_GUARDED_BY(g_plan_mutex);
std::atomic<bool> g_plan_armed{false};            // any non-zero rate
std::atomic<bool> g_env_checked{false};

std::atomic<std::uint64_t> g_probes{0};
std::atomic<std::uint64_t> g_injected{0};

thread_local FaultScope* tl_scope = nullptr;

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

double to_unit(std::uint64_t h) {
  // 53 high bits -> [0, 1).
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

void set_plan_locked(std::shared_ptr<const FaultPlan> plan)
    AKS_REQUIRES(g_plan_mutex) {
  g_plan = std::move(plan);
  g_plan_armed.store(g_plan != nullptr && g_plan->any_active(),
                     std::memory_order_release);
}

// Loads AKS_FAULT_PLAN exactly once, the first time anyone asks while no
// plan is installed. A malformed spec fails loudly: silently running a CI
// fault job fault-free would be worse than crashing it.
void maybe_load_env_plan_locked() AKS_REQUIRES(g_plan_mutex) {
  if (g_env_checked.exchange(true)) return;
  // Plan installation happens while the pipeline is quiescent (header
  // contract), so the getenv cannot race a setenv.
  const char* spec = std::getenv("AKS_FAULT_PLAN");  // NOLINT(concurrency-mt-unsafe)
  if (spec == nullptr || *spec == '\0') return;
  set_plan_locked(std::make_shared<const FaultPlan>(FaultPlan::parse(spec)));
}

std::shared_ptr<const FaultPlan> snapshot_plan() {
  aks::MutexLock lock(g_plan_mutex);
  maybe_load_env_plan_locked();
  return g_plan;
}

}  // namespace

ScopedFaultPlan::ScopedFaultPlan(const FaultPlan& plan) {
  aks::MutexLock lock(g_plan_mutex);
  maybe_load_env_plan_locked();  // so we restore the env plan on exit
  previous_ = g_plan;
  set_plan_locked(std::make_shared<const FaultPlan>(plan));
}

ScopedFaultPlan::~ScopedFaultPlan() {
  aks::MutexLock lock(g_plan_mutex);
  set_plan_locked(std::move(previous_));
}

FaultScope::FaultScope(std::uint32_t site_mask, std::uint64_t key)
    : mask_(site_mask), key_(key), previous_(tl_scope) {
  tl_scope = this;
}

FaultScope::~FaultScope() { tl_scope = previous_; }

std::uint64_t mix_key(std::uint64_t a, std::uint64_t b) {
  return splitmix64(a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 6) + (a >> 2)));
}

bool plan_active() { return g_plan_armed.load(std::memory_order_acquire); }

bool plan_active(Site site) {
  if (!plan_active()) return false;
  const auto plan = snapshot_plan();
  return plan != nullptr && plan->active(site);
}

std::shared_ptr<const FaultPlan> current_plan() {
  const auto plan = snapshot_plan();
  return (plan != nullptr && plan->any_active()) ? plan : nullptr;
}

Fault probe(Site site) {
  if (!g_plan_armed.load(std::memory_order_acquire)) {
    // First probe of the process still has to look for an env plan.
    if (g_env_checked.load(std::memory_order_acquire)) return {};
    (void)snapshot_plan();
    if (!g_plan_armed.load(std::memory_order_acquire)) return {};
  }
  FaultScope* scope = tl_scope;
  if (scope == nullptr || !scope->arms(site)) return {};
  const auto plan = snapshot_plan();
  if (plan == nullptr) return {};
  const SiteRates& rates = plan->at(site);
  if (rates.total() <= 0.0) return {};

  g_probes.fetch_add(1, std::memory_order_relaxed);
  const std::uint64_t h = splitmix64(
      plan->seed ^ mix_key(static_cast<std::uint64_t>(site) + 1,
                           scope->key(), scope->next_draw()));
  const double u = to_unit(h);

  Fault fault;
  double edge = rates.launch_failure;
  if (u < edge) {
    fault.kind = FaultKind::kLaunchFailure;
  } else if (u < (edge += rates.hang)) {
    fault.kind = FaultKind::kHang;
    fault.magnitude = plan->hang_seconds;
  } else if (u < (edge += rates.timing_outlier)) {
    fault.kind = FaultKind::kTimingOutlier;
    // Log-uniform factor from an independent sub-stream of the same hash;
    // half the draws invert it so best-of-N reductions see impossibly fast
    // samples, not just slow ones.
    const std::uint64_t h2 = splitmix64(h);
    const double t = to_unit(h2);
    double factor = std::exp(std::log(plan->outlier_min_factor) +
                             t * (std::log(plan->outlier_max_factor) -
                                  std::log(plan->outlier_min_factor)));
    if ((h2 & 1) != 0) factor = 1.0 / factor;
    fault.magnitude = factor;
  } else if (u < (edge += rates.timing_nan)) {
    fault.kind = FaultKind::kTimingNan;
  } else if (u < (edge += rates.corrupt_row)) {
    fault.kind = FaultKind::kCorruptRow;
  } else if (u < (edge += rates.write_failure)) {
    fault.kind = FaultKind::kWriteFailure;
  } else if (u < edge + rates.torn_write) {
    fault.kind = FaultKind::kTornWrite;
    // Fraction of the record that reaches the file before the simulated
    // crash, from an independent sub-stream; always a strict prefix.
    fault.magnitude = to_unit(splitmix64(h));
  }
  if (fault) {
    g_injected.fetch_add(1, std::memory_order_relaxed);
    trace::instant("fault.injected", {trace::arg("site", to_string(site)),
                                      trace::arg("kind", to_string(fault.kind)),
                                      trace::arg("magnitude", fault.magnitude)});
  }
  return fault;
}

void maybe_inject_launch_fault() {
  const Fault fault = probe(Site::kKernelLaunch);
  if (!fault) return;
  if (fault.kind == FaultKind::kLaunchFailure) {
    throw LaunchFailure("injected fault: kernel launch failed");
  }
  if (fault.kind == FaultKind::kHang) {
    // The kernel hangs; the caller's watchdog gives up after the deadline,
    // so the wall-clock cost is real even though the hang is simulated.
    std::this_thread::sleep_for(
        std::chrono::duration<double>(fault.magnitude));
    throw DeadlineExceeded("injected fault: launch hung past deadline");
  }
}

std::uint64_t probes_total() {
  return g_probes.load(std::memory_order_relaxed);
}

std::uint64_t faults_injected_total() {
  return g_injected.load(std::memory_order_relaxed);
}

}  // namespace aks::faults
