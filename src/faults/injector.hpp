// The process-wide fault injector: deterministic probes, scoped arming.
//
// Two pieces of state cooperate:
//
//  * an installed FaultPlan (process-global). Tests and tools install one
//    with ScopedFaultPlan; CI exports AKS_FAULT_PLAN and the first probe
//    picks it up. No plan installed means every probe is kNone and costs
//    one relaxed atomic load.
//
//  * a thread-local FaultScope. Faults fire only inside a scope that arms
//    the probed site — arming is how a code path declares "I own recovery
//    for faults here". The hardened paths (benchmark_runner measurement
//    loops, OnlineTuner trials, SelectionService warm-ups) arm themselves;
//    everything else (correctness tests, raw kernel launches outside a
//    measurement) never sees an injected fault, so a fault plan can be
//    exported over an entire test suite without failing unhardened code.
//
// Determinism: each probe decision is a pure function of
// (plan seed, site, scope key, scope draw index). The scope key is supplied
// by the caller from stable identifiers — shape dimensions, config index,
// attempt number — never from thread ids or clocks, so the injected-fault
// sequence is bit-identical across runs and thread interleavings. That is
// what makes a CI failure replayable locally with one flag.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>

#include "common/error.hpp"
#include "faults/fault_plan.hpp"

namespace aks::faults {

/// Base of all injected-fault exceptions, itself a common::Error so
/// existing catch sites keep working.
class FaultError : public common::Error {
 public:
  using common::Error::Error;
};

/// The driver rejected the kernel launch.
class LaunchFailure : public FaultError {
 public:
  using FaultError::FaultError;
};

/// The launch hung and the watchdog killed it at the deadline.
class DeadlineExceeded : public FaultError {
 public:
  using FaultError::FaultError;
};

/// Installs `plan` as the process-global plan for the scope's lifetime and
/// restores the previous plan (or the environment plan) on destruction.
/// Installing FaultPlan::none() pins fault-free behaviour over any
/// environment plan. Not re-entrant across threads: install while the
/// pipeline is quiescent (test set-up, CLI start-up).
class ScopedFaultPlan {
 public:
  explicit ScopedFaultPlan(const FaultPlan& plan);
  ~ScopedFaultPlan();
  ScopedFaultPlan(const ScopedFaultPlan&) = delete;
  ScopedFaultPlan& operator=(const ScopedFaultPlan&) = delete;

 private:
  std::shared_ptr<const FaultPlan> previous_;
};

/// Site bitmask helpers for FaultScope.
[[nodiscard]] constexpr std::uint32_t site_bit(Site site) {
  return 1u << static_cast<std::uint32_t>(site);
}

/// Arms a set of sites on the current thread with a deterministic key.
/// Probes outside any scope, or for un-armed sites, never fire. Scopes
/// nest; the innermost one wins.
class FaultScope {
 public:
  FaultScope(std::uint32_t site_mask, std::uint64_t key);
  ~FaultScope();
  FaultScope(const FaultScope&) = delete;
  FaultScope& operator=(const FaultScope&) = delete;

  [[nodiscard]] std::uint64_t key() const { return key_; }
  [[nodiscard]] bool arms(Site site) const {
    return (mask_ & site_bit(site)) != 0;
  }
  /// Next draw index (monotonic within the scope).
  [[nodiscard]] std::uint32_t next_draw() { return draw_++; }

 private:
  std::uint32_t mask_;
  std::uint64_t key_;
  std::uint32_t draw_ = 0;
  FaultScope* previous_;
};

/// 64-bit mix for building scope keys from stable identifiers.
[[nodiscard]] std::uint64_t mix_key(std::uint64_t a, std::uint64_t b);
template <typename... Rest>
[[nodiscard]] std::uint64_t mix_key(std::uint64_t a, std::uint64_t b,
                                    Rest... rest) {
  return mix_key(mix_key(a, b), rest...);
}

/// True when a plan with any non-zero rate is installed (environment plan
/// included).
[[nodiscard]] bool plan_active();
/// True when the installed plan has a non-zero rate at `site`.
[[nodiscard]] bool plan_active(Site site);
/// Snapshot of the installed plan; nullptr when none (or all-zero).
[[nodiscard]] std::shared_ptr<const FaultPlan> current_plan();

/// Deterministic probe: the fault (or kNone) for the current scope's next
/// draw at `site`. Pure in (plan seed, site, scope key, draw index).
[[nodiscard]] Fault probe(Site site);

/// Queue hook: probes Site::kKernelLaunch and materialises the result —
/// throws LaunchFailure on a launch-failure fault; on a hang fault burns
/// the plan's hang_seconds (the watchdog deadline) and throws
/// DeadlineExceeded. No-op outside an armed scope.
void maybe_inject_launch_fault();

/// Lifetime counters (relaxed; for tests and operational logging).
[[nodiscard]] std::uint64_t probes_total();
[[nodiscard]] std::uint64_t faults_injected_total();

}  // namespace aks::faults
