// Bounded single-producer/single-consumer event ring for the trace layer.
//
// Each tracing thread owns exactly one EventRing: the owner thread is the
// only producer, and the draining TraceSession is the only consumer, so the
// ring needs no locks — one release store on the head publishes a slot, one
// acquire load on the other side's index keeps both ends coherent. When the
// ring is full the event is dropped and counted, never blocked on: tracing
// must not introduce back-pressure into the serving hot path, and a drop
// counter that disagrees with the recorded-event count is itself a useful
// diagnostic (the buffer was sized too small for the workload).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "trace/trace_event.hpp"

namespace aks::trace {

class EventRing {
 public:
  /// `capacity` slots, minimum 16; `tid` is stamped into every event.
  EventRing(std::size_t capacity, std::uint32_t tid)
      : slots_(capacity < 16 ? 16 : capacity), tid_(tid) {}

  EventRing(const EventRing&) = delete;
  EventRing& operator=(const EventRing&) = delete;

  /// Producer side (owner thread only). Stamps tid and a per-thread
  /// monotonic sequence number; drops and counts when the ring is full.
  bool push(Event event) {
    const std::uint64_t head = head_.load(std::memory_order_relaxed);
    const std::uint64_t tail = tail_.load(std::memory_order_acquire);
    if (head - tail >= slots_.size()) {
      dropped_.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    event.tid = tid_;
    event.seq = head;
    slots_[head % slots_.size()] = event;
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  /// Consumer side (one drainer). Appends every published event to `out`
  /// and frees the slots. Events published concurrently with the drain are
  /// simply picked up by the next drain.
  std::size_t drain_into(std::vector<Event>& out) {
    const std::uint64_t head = head_.load(std::memory_order_acquire);
    std::uint64_t tail = tail_.load(std::memory_order_relaxed);
    const std::size_t drained = static_cast<std::size_t>(head - tail);
    out.reserve(out.size() + drained);
    while (tail < head) {
      out.push_back(slots_[tail % slots_.size()]);
      ++tail;
    }
    tail_.store(tail, std::memory_order_release);
    return drained;
  }

  [[nodiscard]] std::uint64_t dropped() const {
    return dropped_.load(std::memory_order_relaxed);
  }
  /// Total events ever accepted (the head index — tail never rewinds it).
  [[nodiscard]] std::uint64_t pushed() const {
    return head_.load(std::memory_order_acquire);
  }
  [[nodiscard]] std::uint32_t tid() const { return tid_; }
  [[nodiscard]] std::size_t capacity() const { return slots_.size(); }

 private:
  std::vector<Event> slots_;
  std::atomic<std::uint64_t> head_{0};
  std::atomic<std::uint64_t> tail_{0};
  std::atomic<std::uint64_t> dropped_{0};
  std::uint32_t tid_;
};

}  // namespace aks::trace
