#include "trace/trace.hpp"

#include <algorithm>
#include <chrono>
#include <set>
#include <string>

#include "common/error.hpp"
#include "common/sync.hpp"
#include "common/thread_annotations.hpp"
#include "trace/chrome_export.hpp"
#include "trace/ring_buffer.hpp"

namespace aks::trace {

namespace detail {
std::atomic<bool> g_enabled{false};
}  // namespace detail

struct TraceSession::Impl {
  /// Immutable after the constructor installs the session; read without the
  /// lock by ring registration.
  TraceOptions options;
  mutable aks::Mutex mutex{"trace.impl"};
  /// Rings are co-owned by the session and the emitting thread's TLS slot,
  /// so neither a late-emitting thread nor an early-destroyed session can
  /// leave the other with a dangling ring.
  std::vector<std::shared_ptr<EventRing>> rings AKS_GUARDED_BY(mutex);
  std::uint32_t next_tid AKS_GUARDED_BY(mutex) = 1;
  /// Node-based so c_str() pointers stay stable for the session lifetime.
  std::set<std::string, std::less<>> interned AKS_GUARDED_BY(mutex);
  std::vector<Event> drained AKS_GUARDED_BY(mutex);
  bool drained_valid AKS_GUARDED_BY(mutex) = false;
};

namespace {

// Install state. g_impl/g_owner are guarded by g_session_mutex; the
// generation counter lets threads detect (un)installs without locking on
// the hot path — a thread re-registers its ring only when the generation it
// cached no longer matches.
aks::Mutex g_session_mutex{"trace.session"};
TraceSession::Impl* g_impl AKS_GUARDED_BY(g_session_mutex) = nullptr;
TraceSession* g_owner AKS_GUARDED_BY(g_session_mutex) = nullptr;
std::atomic<std::uint64_t> g_generation{0};
std::atomic<std::uint64_t> g_epoch_ns{0};

thread_local struct TlsRing {
  std::shared_ptr<EventRing> ring;
  std::uint64_t generation = 0;
} tl_ring;

thread_local const LaunchAnnotation::Info* tl_launch = nullptr;

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

std::size_t capacity_events(const TraceOptions& options) {
  return std::max<std::size_t>(16, options.buffer_bytes_per_thread /
                                       sizeof(Event));
}

/// This thread's ring under the current session, attaching one on first
/// use. Null when no session is installed (or it raced away).
EventRing* thread_ring() {
  TlsRing& tls = tl_ring;
  const std::uint64_t generation =
      g_generation.load(std::memory_order_acquire);
  if (tls.generation != generation) {
    tls.generation = generation;
    tls.ring.reset();
    aks::MutexLock lock(g_session_mutex);
    if (g_impl != nullptr &&
        detail::g_enabled.load(std::memory_order_acquire) &&
        g_generation.load(std::memory_order_relaxed) == generation) {
      // next_tid is Impl state guarded by impl->mutex (it used to be bumped
      // under g_session_mutex only, which raced against nothing today but
      // violated the Impl capability contract); assign the tid in the same
      // critical section that publishes the ring.
      aks::MutexLock rings_lock(g_impl->mutex);
      auto ring = std::make_shared<EventRing>(capacity_events(g_impl->options),
                                              g_impl->next_tid++);
      g_impl->rings.push_back(ring);
      tls.ring = std::move(ring);
    }
  }
  return tls.ring.get();
}

}  // namespace

namespace detail {

void emit(EventType type, const char* name, const Arg* args, std::size_t n) {
  EventRing* ring = thread_ring();
  if (ring == nullptr) return;
  Event event;
  event.ts_ns = now_ns() - g_epoch_ns.load(std::memory_order_relaxed);
  event.name = name;
  event.type = type;
  event.num_args =
      static_cast<std::uint8_t>(std::min<std::size_t>(n, kMaxArgs));
  for (std::size_t i = 0; i < event.num_args; ++i) event.args[i] = args[i];
  ring->push(event);
}

}  // namespace detail

LaunchAnnotation::LaunchAnnotation(const Info& info)
    : info_(info), previous_(tl_launch) {
  tl_launch = &info_;
}

LaunchAnnotation::~LaunchAnnotation() { tl_launch = previous_; }

const LaunchAnnotation::Info* LaunchAnnotation::current() {
  return tl_launch;
}

TraceSession::TraceSession(TraceOptions options)
    : impl_(std::make_unique<Impl>()) {
  impl_->options = options;
  aks::MutexLock lock(g_session_mutex);
  AKS_CHECK(g_impl == nullptr,
            "a TraceSession is already active (one per process)");
  g_epoch_ns.store(now_ns(), std::memory_order_relaxed);
  g_impl = impl_.get();
  g_owner = this;
  g_generation.fetch_add(1, std::memory_order_release);
  detail::g_enabled.store(true, std::memory_order_release);
}

TraceSession::~TraceSession() {
  stop();
  aks::MutexLock lock(g_session_mutex);
  if (g_impl == impl_.get()) {
    g_impl = nullptr;
    g_owner = nullptr;
    // Invalidate every thread's cached ring pointer; the shared_ptr each
    // TLS slot still holds keeps its ring's memory valid until the thread
    // next emits (and re-checks the generation) or exits.
    g_generation.fetch_add(1, std::memory_order_release);
  }
}

void TraceSession::stop() {
  detail::g_enabled.store(false, std::memory_order_release);
}

TraceSession* TraceSession::current() {
  aks::MutexLock lock(g_session_mutex);
  return g_owner;
}

const std::vector<Event>& TraceSession::events() {
  stop();
  aks::MutexLock lock(impl_->mutex);
  if (!impl_->drained_valid) {
    for (const auto& ring : impl_->rings) ring->drain_into(impl_->drained);
    std::sort(impl_->drained.begin(), impl_->drained.end(),
              [](const Event& a, const Event& b) {
                if (a.ts_ns != b.ts_ns) return a.ts_ns < b.ts_ns;
                if (a.tid != b.tid) return a.tid < b.tid;
                return a.seq < b.seq;
              });
    impl_->drained_valid = true;
  }
  return impl_->drained;
}

void TraceSession::write_chrome_json(std::ostream& out) {
  write_chrome_trace_json(events(), out);
}

void TraceSession::write_span_summary_csv(std::ostream& out) {
  (void)aks::trace::write_span_summary_csv(events(), out);
}

TraceStats TraceSession::stats() const {
  TraceStats stats;
  aks::MutexLock lock(impl_->mutex);
  stats.threads = impl_->rings.size();
  for (const auto& ring : impl_->rings) {
    stats.recorded += ring->pushed();
    stats.dropped += ring->dropped();
  }
  return stats;
}

const char* TraceSession::intern(std::string_view s) {
  aks::MutexLock lock(impl_->mutex);
  const auto it = impl_->interned.find(s);
  if (it != impl_->interned.end()) return it->c_str();
  return impl_->interned.emplace(s).first->c_str();
}

}  // namespace aks::trace
