// The fixed-size event record shared by the trace emitter, the per-thread
// rings, and the exporters.
//
// Events are PODs copied by value into pre-allocated ring slots, so the hot
// path never allocates. Names and string argument values are `const char*`
// that must outlive the session: use string literals, or
// TraceSession::intern() for strings built at runtime (interning is a
// cold-path operation — do it once per warm-up/sweep, never per request).
#pragma once

#include <cstddef>
#include <cstdint>
#include <type_traits>

namespace aks::trace {

inline constexpr std::size_t kMaxArgs = 4;

enum class EventType : std::uint8_t {
  kBegin,    ///< span open ("B" in Chrome trace)
  kEnd,      ///< span close ("E")
  kInstant,  ///< point event ("i")
  kCounter,  ///< sampled value ("C")
};

enum class ArgType : std::uint8_t { kNone, kUint, kInt, kDouble, kString };

/// One typed key/value annotation attached to an event.
struct Arg {
  const char* key = nullptr;
  ArgType type = ArgType::kNone;
  union {
    std::uint64_t u;
    std::int64_t i;
    double d;
    const char* s;
  } value{};
};

[[nodiscard]] inline Arg arg(const char* key, double v) {
  Arg a;
  a.key = key;
  a.type = ArgType::kDouble;
  a.value.d = v;
  return a;
}

[[nodiscard]] inline Arg arg(const char* key, const char* v) {
  Arg a;
  a.key = key;
  a.type = ArgType::kString;
  a.value.s = v;
  return a;
}

template <typename T>
  requires(std::is_integral_v<T> && std::is_unsigned_v<T>)
[[nodiscard]] inline Arg arg(const char* key, T v) {
  Arg a;
  a.key = key;
  a.type = ArgType::kUint;
  a.value.u = static_cast<std::uint64_t>(v);
  return a;
}

template <typename T>
  requires(std::is_integral_v<T> && std::is_signed_v<T>)
[[nodiscard]] inline Arg arg(const char* key, T v) {
  Arg a;
  a.key = key;
  a.type = ArgType::kInt;
  a.value.i = static_cast<std::int64_t>(v);
  return a;
}

/// One trace event. `tid` and `seq` are stamped by the owning ring; `seq`
/// is per-thread monotonic, which makes the drained order deterministic
/// (sort by timestamp, then tid, then seq) and keeps per-thread begin/end
/// nesting intact even when timestamps tie.
struct Event {
  std::uint64_t ts_ns = 0;  ///< nanoseconds since the session epoch
  std::uint64_t seq = 0;
  const char* name = nullptr;
  std::uint32_t tid = 0;
  EventType type = EventType::kInstant;
  std::uint8_t num_args = 0;
  Arg args[kMaxArgs];
};

}  // namespace aks::trace
