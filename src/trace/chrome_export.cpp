#include "trace/chrome_export.hpp"

#include <cmath>
#include <cstdio>
#include <cstring>
#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "common/metrics.hpp"

namespace aks::trace {

namespace {

void append_json_escaped(std::string& out, const char* s) {
  if (s == nullptr) return;
  for (const char* p = s; *p != '\0'; ++p) {
    const char c = *p;
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

void append_double(std::string& out, double v) {
  // JSON has no inf/nan literals; quote them so the document stays parseable.
  if (!std::isfinite(v)) {
    out += '"';
    out += v != v ? "nan" : (v > 0 ? "inf" : "-inf");
    out += '"';
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out += buf;
}

void append_args(std::string& out, const Event& e) {
  out += "\"args\":{";
  for (std::uint8_t i = 0; i < e.num_args; ++i) {
    const Arg& a = e.args[i];
    if (i > 0) out += ',';
    out += '"';
    append_json_escaped(out, a.key != nullptr ? a.key : "");
    out += "\":";
    switch (a.type) {
      case ArgType::kUint:
        out += std::to_string(a.value.u);
        break;
      case ArgType::kInt:
        out += std::to_string(a.value.i);
        break;
      case ArgType::kDouble:
        append_double(out, a.value.d);
        break;
      case ArgType::kString:
        out += '"';
        append_json_escaped(out, a.value.s != nullptr ? a.value.s : "");
        out += '"';
        break;
      case ArgType::kNone:
        out += "null";
        break;
    }
  }
  out += '}';
}

bool same_name(const char* a, const char* b) {
  if (a == b) return true;
  if (a == nullptr || b == nullptr) return false;
  return std::strcmp(a, b) == 0;
}

void append_ts_us(std::string& out, std::uint64_t ts_ns) {
  // Microseconds with the full 3 fractional digits, formatted from the
  // integer ns so huge timestamps don't lose precision through a double.
  out += std::to_string(ts_ns / 1000);
  out += '.';
  char buf[8];
  std::snprintf(buf, sizeof(buf), "%03u",
                static_cast<unsigned>(ts_ns % 1000));
  out += buf;
}

}  // namespace

void write_chrome_trace_json(const std::vector<Event>& events,
                             std::ostream& out) {
  std::string doc;
  doc.reserve(events.size() * 96 + 64);
  doc += "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[";
  bool first = true;
  for (const Event& e : events) {
    if (!first) doc += ',';
    first = false;
    doc += "{\"name\":\"";
    append_json_escaped(doc, e.name != nullptr ? e.name : "");
    doc += "\",\"ph\":\"";
    switch (e.type) {
      case EventType::kBegin:
        doc += 'B';
        break;
      case EventType::kEnd:
        doc += 'E';
        break;
      case EventType::kInstant:
        doc += 'i';
        break;
      case EventType::kCounter:
        doc += 'C';
        break;
    }
    doc += "\",\"pid\":1,\"tid\":";
    doc += std::to_string(e.tid);
    doc += ",\"ts\":";
    append_ts_us(doc, e.ts_ns);
    if (e.type == EventType::kInstant) doc += ",\"s\":\"t\"";
    doc += ',';
    append_args(doc, e);
    doc += '}';
  }
  doc += "]}";
  out << doc;
}

std::size_t write_span_summary_csv(const std::vector<Event>& events,
                                   std::ostream& out) {
  struct Open {
    const char* name;
    std::uint64_t ts_ns;
  };
  struct Row {
    common::LatencyHistogram histogram;
  };
  std::map<std::uint32_t, std::vector<Open>> open_by_tid;
  std::map<std::string, Row> rows;
  std::size_t unbalanced = 0;

  for (const Event& e : events) {
    if (e.type == EventType::kBegin) {
      open_by_tid[e.tid].push_back({e.name, e.ts_ns});
    } else if (e.type == EventType::kEnd) {
      auto& stack = open_by_tid[e.tid];
      // Spans are RAII so per-thread ends arrive LIFO; a mismatched top
      // means this end's begin was dropped by a full ring. Leave the stack
      // alone in that case so the enclosing span still pairs correctly.
      if (!stack.empty() && same_name(stack.back().name, e.name)) {
        rows[e.name != nullptr ? e.name : ""].histogram.record_seconds(
            static_cast<double>(e.ts_ns - stack.back().ts_ns) * 1e-9);
        stack.pop_back();
      } else {
        ++unbalanced;
      }
    }
  }
  for (const auto& [tid, stack] : open_by_tid) unbalanced += stack.size();

  out << "name,count,total_seconds,mean_seconds,p50_seconds,p99_seconds\n";
  for (const auto& [name, row] : rows) {
    const auto& h = row.histogram;
    out << name << ',' << h.count() << ',' << h.total_seconds() << ','
        << h.mean_seconds() << ',' << h.quantile_seconds(0.5) << ','
        << h.quantile_seconds(0.99) << "\n";
  }
  return unbalanced;
}

}  // namespace aks::trace
