// Exporters over a drained, (ts, tid, seq)-sorted event list — see
// TraceSession::events(). Split from trace.cpp so the formats are testable
// against hand-built event vectors without running a live session.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <vector>

#include "trace/trace_event.hpp"

namespace aks::trace {

/// Chrome trace-event JSON: `{"displayTimeUnit":"ns","traceEvents":[...]}`
/// with one object per event (ph B/E/i/C, pid 1, tid, ts in microseconds to
/// 3 decimals, args by type). Instants get thread scope (`"s":"t"`).
/// Tolerates unbalanced begin/end pairs — viewers auto-close them.
void write_chrome_trace_json(const std::vector<Event>& events,
                             std::ostream& out);

/// Per-span-name summary CSV:
/// `name,count,total_seconds,mean_seconds,p50_seconds,p99_seconds`, rows
/// sorted by name, quantiles from common::LatencyHistogram bucket upper
/// bounds. Begin/end events are paired LIFO per thread; returns the number
/// of events left unpaired (a begin with no end because the session stopped
/// mid-span, or an end whose begin was dropped by a full ring).
std::size_t write_span_summary_csv(const std::vector<Event>& events,
                                   std::ostream& out);

}  // namespace aks::trace
