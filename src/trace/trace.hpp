// End-to-end structured tracing — per-request causality for the whole
// selection pipeline.
//
// Aggregate metrics (common/metrics.hpp) say *how often* a select() was
// slow; this layer says *why*: one trace shows a request entering
// serve::SelectionService, coalescing behind another thread's warm-up, the
// leader's OnlineTuner sweep with every candidate trial, the syclrt kernel
// launches under those trials, the store flush that persisted the decision,
// and any fault injected along the way — each as a span or instant event
// with nanosecond timestamps, the emitting thread, and a small typed-arg
// payload.
//
// Design constraints, in priority order:
//
//  * disabled cost ≈ zero — tracing is off by default and every
//    instrumentation site is guarded by `trace::enabled()`, a single
//    relaxed atomic load. bench/trace_overhead gates the disabled-path
//    cost at <2% of serving throughput.
//
//  * enabled cost is bounded — events go into per-thread lock-free SPSC
//    rings (ring_buffer.hpp) sized by TraceOptions; a full ring drops and
//    counts instead of blocking, so tracing can never add back-pressure to
//    the serving hot path. The only locks are on the cold paths: first
//    event of a thread (ring registration) and string interning.
//
//  * exportable anywhere — TraceSession::write_chrome_json() emits the
//    Chrome trace-event format (load in chrome://tracing or
//    https://ui.perfetto.dev), write_span_summary_csv() a per-span-name
//    count/total/p50/p99 table reusing common::LatencyHistogram.
//
// Lifecycle: constructing a TraceSession installs it process-wide (one at
// a time) and enables recording; stop() (or destruction) disables it.
// Threads lazily attach a ring on their first event; rings are
// shared_ptr-owned by both the session and the thread, so a thread that
// races a session shutdown writes into memory that stays valid — the event
// is simply not exported.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <iosfwd>
#include <memory>
#include <string_view>
#include <vector>

#include "trace/trace_event.hpp"

namespace aks::trace {

namespace detail {
/// Process-wide enable flag; read on every instrumentation site.
extern std::atomic<bool> g_enabled;
/// Slow path: stamps the timestamp and pushes into this thread's ring.
void emit(EventType type, const char* name, const Arg* args, std::size_t n);
}  // namespace detail

/// One relaxed load — the entire disabled-path cost of a trace site.
[[nodiscard]] inline bool enabled() {
  return detail::g_enabled.load(std::memory_order_relaxed);
}

inline void begin(const char* name, std::initializer_list<Arg> args = {}) {
  if (enabled()) detail::emit(EventType::kBegin, name, args.begin(), args.size());
}
inline void end(const char* name, std::initializer_list<Arg> args = {}) {
  if (enabled()) detail::emit(EventType::kEnd, name, args.begin(), args.size());
}
inline void instant(const char* name, std::initializer_list<Arg> args = {}) {
  if (enabled())
    detail::emit(EventType::kInstant, name, args.begin(), args.size());
}
inline void counter(const char* name, double value) {
  if (enabled()) {
    const Arg a = arg("value", value);
    detail::emit(EventType::kCounter, name, &a, 1);
  }
}

/// RAII span. Default-constructed disarmed so call sites can keep the
/// arming decision (and the argument evaluation) behind one enabled()
/// check:
///
///   trace::Span span;
///   if (trace::enabled())
///     span.arm("serve.select", {trace::arg("m", shape.m)});
///   ...
///   span.annotate(trace::arg("outcome", "hit"));  // attached to the end
///
/// If tracing is disabled mid-span the end event is dropped with the rest;
/// the exporters tolerate unbalanced spans (they close them at the last
/// drained timestamp and count them).
class Span {
 public:
  Span() = default;
  explicit Span(const char* name, std::initializer_list<Arg> args = {}) {
    if (enabled()) arm(name, args);
  }
  ~Span() { close(); }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  void arm(const char* name, std::initializer_list<Arg> args = {}) {
    name_ = name;
    detail::emit(EventType::kBegin, name, args.begin(), args.size());
  }

  /// Attaches an argument to the end event (up to kMaxArgs; extras are
  /// silently ignored). No-op when disarmed.
  void annotate(const Arg& a) {
    if (name_ != nullptr && num_end_args_ < kMaxArgs) {
      end_args_[num_end_args_++] = a;
    }
  }

  /// Emits the end event early (idempotent; the destructor then no-ops).
  void close() {
    if (name_ == nullptr) return;
    detail::emit(EventType::kEnd, name_, end_args_, num_end_args_);
    name_ = nullptr;
    num_end_args_ = 0;
  }

  [[nodiscard]] bool armed() const { return name_ != nullptr; }

 private:
  const char* name_ = nullptr;
  std::uint8_t num_end_args_ = 0;
  Arg end_args_[kMaxArgs];
};

/// Thread-local annotation describing the kernel behind the next
/// syclrt::Queue submission(s) on this thread. The launcher that knows the
/// configuration and problem shape (gemm::launch_gemm, the benchmark
/// runner) installs one; Queue attaches the fields to its launch span so a
/// trace correlates a launch with the selection decision that chose it.
class LaunchAnnotation {
 public:
  struct Info {
    std::uint64_t config_index = 0;
    std::uint64_t m = 0, k = 0, n = 0;
    std::uint64_t batch = 1;
    /// Model-predicted kernel seconds; NaN when no prediction exists.
    double predicted_seconds = 0.0;
    bool has_prediction = false;
  };

  explicit LaunchAnnotation(const Info& info);
  ~LaunchAnnotation();
  LaunchAnnotation(const LaunchAnnotation&) = delete;
  LaunchAnnotation& operator=(const LaunchAnnotation&) = delete;

  /// The innermost annotation installed on this thread, or null.
  [[nodiscard]] static const Info* current();

 private:
  Info info_;
  const Info* previous_;
};

struct TraceOptions {
  /// Ring capacity per tracing thread, in bytes (rounded down to whole
  /// events, minimum 16 events). The CLI exposes this as --trace-buffer-kb.
  std::size_t buffer_bytes_per_thread = std::size_t{4} << 20;
};

struct TraceStats {
  std::uint64_t recorded = 0;  ///< events accepted into a ring
  std::uint64_t dropped = 0;   ///< events rejected by a full ring
  std::size_t threads = 0;     ///< threads that attached a ring
};

/// Owns the process-wide recording session. Exactly one may exist at a
/// time (the constructor throws common::Error otherwise).
class TraceSession {
 public:
  explicit TraceSession(TraceOptions options = {});
  ~TraceSession();
  TraceSession(const TraceSession&) = delete;
  TraceSession& operator=(const TraceSession&) = delete;

  /// Disables recording (idempotent). Events already in the rings stay
  /// drainable; threads stop producing after their next enabled() check.
  void stop();

  /// Stops and drains every ring into one deterministically ordered list:
  /// sorted by (timestamp, tid, seq), so per-thread order — and therefore
  /// begin/end nesting — is preserved exactly. Cached; repeated calls and
  /// the exporters reuse the same snapshot.
  const std::vector<Event>& events();

  /// Chrome trace-event JSON (chrome://tracing, ui.perfetto.dev).
  void write_chrome_json(std::ostream& out);
  /// Per-span-name summary: count,total,mean,p50,p99 (seconds), sorted by
  /// name. Quantiles via common::LatencyHistogram bucket upper bounds.
  void write_span_summary_csv(std::ostream& out);

  [[nodiscard]] TraceStats stats() const;

  /// Copies `s` into session-owned storage and returns a stable pointer,
  /// deduplicated. For names/args built at runtime (config names). Cold
  /// path: takes the session lock.
  const char* intern(std::string_view s);

  /// The installed session, or null. Instrumentation does not need this
  /// (emit() finds it internally); exposed for intern() call sites.
  [[nodiscard]] static TraceSession* current();

  struct Impl;  // opaque; defined in trace.cpp

 private:
  std::unique_ptr<Impl> impl_;
};

}  // namespace aks::trace
