file(REMOVE_RECURSE
  "CMakeFiles/ml_cluster_test.dir/ml_cluster_test.cpp.o"
  "CMakeFiles/ml_cluster_test.dir/ml_cluster_test.cpp.o.d"
  "ml_cluster_test"
  "ml_cluster_test.pdb"
  "ml_cluster_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ml_cluster_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
