file(REMOVE_RECURSE
  "CMakeFiles/gemm_batched_test.dir/gemm_batched_test.cpp.o"
  "CMakeFiles/gemm_batched_test.dir/gemm_batched_test.cpp.o.d"
  "gemm_batched_test"
  "gemm_batched_test.pdb"
  "gemm_batched_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gemm_batched_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
