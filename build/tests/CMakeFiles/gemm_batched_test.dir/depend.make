# Empty dependencies file for gemm_batched_test.
# This may be replaced when dependencies are built.
