file(REMOVE_RECURSE
  "CMakeFiles/core_codegen_test.dir/core_codegen_test.cpp.o"
  "CMakeFiles/core_codegen_test.dir/core_codegen_test.cpp.o.d"
  "core_codegen_test"
  "core_codegen_test.pdb"
  "core_codegen_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_codegen_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
