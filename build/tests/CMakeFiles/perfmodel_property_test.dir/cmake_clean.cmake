file(REMOVE_RECURSE
  "CMakeFiles/perfmodel_property_test.dir/perfmodel_property_test.cpp.o"
  "CMakeFiles/perfmodel_property_test.dir/perfmodel_property_test.cpp.o.d"
  "perfmodel_property_test"
  "perfmodel_property_test.pdb"
  "perfmodel_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perfmodel_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
