file(REMOVE_RECURSE
  "CMakeFiles/syclrt_test.dir/syclrt_test.cpp.o"
  "CMakeFiles/syclrt_test.dir/syclrt_test.cpp.o.d"
  "syclrt_test"
  "syclrt_test.pdb"
  "syclrt_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/syclrt_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
