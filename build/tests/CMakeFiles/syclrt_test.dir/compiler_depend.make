# Empty compiler generated dependencies file for syclrt_test.
# This may be replaced when dependencies are built.
