file(REMOVE_RECURSE
  "CMakeFiles/tune_search_test.dir/tune_search_test.cpp.o"
  "CMakeFiles/tune_search_test.dir/tune_search_test.cpp.o.d"
  "tune_search_test"
  "tune_search_test.pdb"
  "tune_search_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tune_search_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
