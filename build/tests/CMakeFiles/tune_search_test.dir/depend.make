# Empty dependencies file for tune_search_test.
# This may be replaced when dependencies are built.
