# Empty dependencies file for perfmodel_device_file_test.
# This may be replaced when dependencies are built.
