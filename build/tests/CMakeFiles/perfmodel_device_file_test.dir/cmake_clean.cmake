file(REMOVE_RECURSE
  "CMakeFiles/perfmodel_device_file_test.dir/perfmodel_device_file_test.cpp.o"
  "CMakeFiles/perfmodel_device_file_test.dir/perfmodel_device_file_test.cpp.o.d"
  "perfmodel_device_file_test"
  "perfmodel_device_file_test.pdb"
  "perfmodel_device_file_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perfmodel_device_file_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
