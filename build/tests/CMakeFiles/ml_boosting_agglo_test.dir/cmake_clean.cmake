file(REMOVE_RECURSE
  "CMakeFiles/ml_boosting_agglo_test.dir/ml_boosting_agglo_test.cpp.o"
  "CMakeFiles/ml_boosting_agglo_test.dir/ml_boosting_agglo_test.cpp.o.d"
  "ml_boosting_agglo_test"
  "ml_boosting_agglo_test.pdb"
  "ml_boosting_agglo_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ml_boosting_agglo_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
