# Empty dependencies file for ml_boosting_agglo_test.
# This may be replaced when dependencies are built.
