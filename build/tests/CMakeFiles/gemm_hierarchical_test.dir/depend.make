# Empty dependencies file for gemm_hierarchical_test.
# This may be replaced when dependencies are built.
