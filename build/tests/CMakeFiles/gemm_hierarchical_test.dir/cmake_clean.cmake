file(REMOVE_RECURSE
  "CMakeFiles/gemm_hierarchical_test.dir/gemm_hierarchical_test.cpp.o"
  "CMakeFiles/gemm_hierarchical_test.dir/gemm_hierarchical_test.cpp.o.d"
  "gemm_hierarchical_test"
  "gemm_hierarchical_test.pdb"
  "gemm_hierarchical_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gemm_hierarchical_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
