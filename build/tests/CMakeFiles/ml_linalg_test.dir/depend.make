# Empty dependencies file for ml_linalg_test.
# This may be replaced when dependencies are built.
