file(REMOVE_RECURSE
  "CMakeFiles/core_pruning_test.dir/core_pruning_test.cpp.o"
  "CMakeFiles/core_pruning_test.dir/core_pruning_test.cpp.o.d"
  "core_pruning_test"
  "core_pruning_test.pdb"
  "core_pruning_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_pruning_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
