# Empty dependencies file for core_network_estimator_test.
# This may be replaced when dependencies are built.
