# Empty compiler generated dependencies file for tune_extended_test.
# This may be replaced when dependencies are built.
