file(REMOVE_RECURSE
  "CMakeFiles/tune_extended_test.dir/tune_extended_test.cpp.o"
  "CMakeFiles/tune_extended_test.dir/tune_extended_test.cpp.o.d"
  "tune_extended_test"
  "tune_extended_test.pdb"
  "tune_extended_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tune_extended_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
