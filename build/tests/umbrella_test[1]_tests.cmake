add_test([=[Umbrella.ExposesWholeWorkflow]=]  /root/repo/build/tests/umbrella_test [==[--gtest_filter=Umbrella.ExposesWholeWorkflow]==] --gtest_also_run_disabled_tests)
set_tests_properties([=[Umbrella.ExposesWholeWorkflow]=]  PROPERTIES WORKING_DIRECTORY /root/repo/build/tests SKIP_REGULAR_EXPRESSION [==[\[  SKIPPED \]]==])
set(  umbrella_test_TESTS Umbrella.ExposesWholeWorkflow)
