file(REMOVE_RECURSE
  "CMakeFiles/search_strategies.dir/search_strategies.cpp.o"
  "CMakeFiles/search_strategies.dir/search_strategies.cpp.o.d"
  "search_strategies"
  "search_strategies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/search_strategies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
