# Empty compiler generated dependencies file for search_strategies.
# This may be replaced when dependencies are built.
