file(REMOVE_RECURSE
  "CMakeFiles/generate_selector.dir/generate_selector.cpp.o"
  "CMakeFiles/generate_selector.dir/generate_selector.cpp.o.d"
  "generate_selector"
  "generate_selector.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/generate_selector.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
