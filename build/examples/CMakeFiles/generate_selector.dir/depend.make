# Empty dependencies file for generate_selector.
# This may be replaced when dependencies are built.
