# Empty dependencies file for explore_dataset.
# This may be replaced when dependencies are built.
