file(REMOVE_RECURSE
  "CMakeFiles/explore_dataset.dir/explore_dataset.cpp.o"
  "CMakeFiles/explore_dataset.dir/explore_dataset.cpp.o.d"
  "explore_dataset"
  "explore_dataset.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/explore_dataset.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
