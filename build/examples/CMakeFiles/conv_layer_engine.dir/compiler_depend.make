# Empty compiler generated dependencies file for conv_layer_engine.
# This may be replaced when dependencies are built.
