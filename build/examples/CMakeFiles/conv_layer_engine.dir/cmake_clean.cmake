file(REMOVE_RECURSE
  "CMakeFiles/conv_layer_engine.dir/conv_layer_engine.cpp.o"
  "CMakeFiles/conv_layer_engine.dir/conv_layer_engine.cpp.o.d"
  "conv_layer_engine"
  "conv_layer_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/conv_layer_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
