file(REMOVE_RECURSE
  "CMakeFiles/tune_for_network.dir/tune_for_network.cpp.o"
  "CMakeFiles/tune_for_network.dir/tune_for_network.cpp.o.d"
  "tune_for_network"
  "tune_for_network.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tune_for_network.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
