# Empty dependencies file for tune_for_network.
# This may be replaced when dependencies are built.
