# Empty dependencies file for aks_tune_cli.
# This may be replaced when dependencies are built.
