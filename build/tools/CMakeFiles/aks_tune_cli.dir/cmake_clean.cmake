file(REMOVE_RECURSE
  "CMakeFiles/aks_tune_cli.dir/aks_tune.cpp.o"
  "CMakeFiles/aks_tune_cli.dir/aks_tune.cpp.o.d"
  "aks_tune"
  "aks_tune.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aks_tune_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
