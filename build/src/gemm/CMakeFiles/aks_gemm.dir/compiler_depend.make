# Empty compiler generated dependencies file for aks_gemm.
# This may be replaced when dependencies are built.
