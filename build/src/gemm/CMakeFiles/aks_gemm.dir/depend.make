# Empty dependencies file for aks_gemm.
# This may be replaced when dependencies are built.
