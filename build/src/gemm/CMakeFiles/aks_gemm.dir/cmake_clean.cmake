file(REMOVE_RECURSE
  "CMakeFiles/aks_gemm.dir/config.cpp.o"
  "CMakeFiles/aks_gemm.dir/config.cpp.o.d"
  "CMakeFiles/aks_gemm.dir/reference.cpp.o"
  "CMakeFiles/aks_gemm.dir/reference.cpp.o.d"
  "CMakeFiles/aks_gemm.dir/registry.cpp.o"
  "CMakeFiles/aks_gemm.dir/registry.cpp.o.d"
  "libaks_gemm.a"
  "libaks_gemm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aks_gemm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
