file(REMOVE_RECURSE
  "libaks_gemm.a"
)
