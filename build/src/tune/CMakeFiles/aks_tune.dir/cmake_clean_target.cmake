file(REMOVE_RECURSE
  "libaks_tune.a"
)
