file(REMOVE_RECURSE
  "CMakeFiles/aks_tune.dir/extended_space.cpp.o"
  "CMakeFiles/aks_tune.dir/extended_space.cpp.o.d"
  "CMakeFiles/aks_tune.dir/search.cpp.o"
  "CMakeFiles/aks_tune.dir/search.cpp.o.d"
  "libaks_tune.a"
  "libaks_tune.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aks_tune.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
