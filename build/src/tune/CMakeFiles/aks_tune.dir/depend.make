# Empty dependencies file for aks_tune.
# This may be replaced when dependencies are built.
