# Empty compiler generated dependencies file for aks_common.
# This may be replaced when dependencies are built.
