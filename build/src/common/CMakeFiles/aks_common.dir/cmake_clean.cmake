file(REMOVE_RECURSE
  "CMakeFiles/aks_common.dir/csv.cpp.o"
  "CMakeFiles/aks_common.dir/csv.cpp.o.d"
  "CMakeFiles/aks_common.dir/log.cpp.o"
  "CMakeFiles/aks_common.dir/log.cpp.o.d"
  "CMakeFiles/aks_common.dir/rng.cpp.o"
  "CMakeFiles/aks_common.dir/rng.cpp.o.d"
  "CMakeFiles/aks_common.dir/stats.cpp.o"
  "CMakeFiles/aks_common.dir/stats.cpp.o.d"
  "CMakeFiles/aks_common.dir/strings.cpp.o"
  "CMakeFiles/aks_common.dir/strings.cpp.o.d"
  "CMakeFiles/aks_common.dir/thread_pool.cpp.o"
  "CMakeFiles/aks_common.dir/thread_pool.cpp.o.d"
  "libaks_common.a"
  "libaks_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aks_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
