file(REMOVE_RECURSE
  "libaks_common.a"
)
