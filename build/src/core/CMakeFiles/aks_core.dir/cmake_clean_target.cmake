file(REMOVE_RECURSE
  "libaks_core.a"
)
