
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/codegen.cpp" "src/core/CMakeFiles/aks_core.dir/codegen.cpp.o" "gcc" "src/core/CMakeFiles/aks_core.dir/codegen.cpp.o.d"
  "/root/repo/src/core/conv_engine.cpp" "src/core/CMakeFiles/aks_core.dir/conv_engine.cpp.o" "gcc" "src/core/CMakeFiles/aks_core.dir/conv_engine.cpp.o.d"
  "/root/repo/src/core/evaluation.cpp" "src/core/CMakeFiles/aks_core.dir/evaluation.cpp.o" "gcc" "src/core/CMakeFiles/aks_core.dir/evaluation.cpp.o.d"
  "/root/repo/src/core/network_estimator.cpp" "src/core/CMakeFiles/aks_core.dir/network_estimator.cpp.o" "gcc" "src/core/CMakeFiles/aks_core.dir/network_estimator.cpp.o.d"
  "/root/repo/src/core/online.cpp" "src/core/CMakeFiles/aks_core.dir/online.cpp.o" "gcc" "src/core/CMakeFiles/aks_core.dir/online.cpp.o.d"
  "/root/repo/src/core/pipeline.cpp" "src/core/CMakeFiles/aks_core.dir/pipeline.cpp.o" "gcc" "src/core/CMakeFiles/aks_core.dir/pipeline.cpp.o.d"
  "/root/repo/src/core/pruning.cpp" "src/core/CMakeFiles/aks_core.dir/pruning.cpp.o" "gcc" "src/core/CMakeFiles/aks_core.dir/pruning.cpp.o.d"
  "/root/repo/src/core/selector.cpp" "src/core/CMakeFiles/aks_core.dir/selector.cpp.o" "gcc" "src/core/CMakeFiles/aks_core.dir/selector.cpp.o.d"
  "/root/repo/src/core/serialize.cpp" "src/core/CMakeFiles/aks_core.dir/serialize.cpp.o" "gcc" "src/core/CMakeFiles/aks_core.dir/serialize.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/aks_common.dir/DependInfo.cmake"
  "/root/repo/build/src/conv/CMakeFiles/aks_conv.dir/DependInfo.cmake"
  "/root/repo/build/src/dataset/CMakeFiles/aks_dataset.dir/DependInfo.cmake"
  "/root/repo/build/src/gemm/CMakeFiles/aks_gemm.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/aks_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/perfmodel/CMakeFiles/aks_perfmodel.dir/DependInfo.cmake"
  "/root/repo/build/src/syclrt/CMakeFiles/aks_syclrt.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
