file(REMOVE_RECURSE
  "CMakeFiles/aks_core.dir/codegen.cpp.o"
  "CMakeFiles/aks_core.dir/codegen.cpp.o.d"
  "CMakeFiles/aks_core.dir/conv_engine.cpp.o"
  "CMakeFiles/aks_core.dir/conv_engine.cpp.o.d"
  "CMakeFiles/aks_core.dir/evaluation.cpp.o"
  "CMakeFiles/aks_core.dir/evaluation.cpp.o.d"
  "CMakeFiles/aks_core.dir/network_estimator.cpp.o"
  "CMakeFiles/aks_core.dir/network_estimator.cpp.o.d"
  "CMakeFiles/aks_core.dir/online.cpp.o"
  "CMakeFiles/aks_core.dir/online.cpp.o.d"
  "CMakeFiles/aks_core.dir/pipeline.cpp.o"
  "CMakeFiles/aks_core.dir/pipeline.cpp.o.d"
  "CMakeFiles/aks_core.dir/pruning.cpp.o"
  "CMakeFiles/aks_core.dir/pruning.cpp.o.d"
  "CMakeFiles/aks_core.dir/selector.cpp.o"
  "CMakeFiles/aks_core.dir/selector.cpp.o.d"
  "CMakeFiles/aks_core.dir/serialize.cpp.o"
  "CMakeFiles/aks_core.dir/serialize.cpp.o.d"
  "libaks_core.a"
  "libaks_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aks_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
