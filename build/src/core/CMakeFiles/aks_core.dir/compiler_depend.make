# Empty compiler generated dependencies file for aks_core.
# This may be replaced when dependencies are built.
