# Empty compiler generated dependencies file for aks_dataset.
# This may be replaced when dependencies are built.
