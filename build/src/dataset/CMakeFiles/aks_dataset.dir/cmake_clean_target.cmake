file(REMOVE_RECURSE
  "libaks_dataset.a"
)
