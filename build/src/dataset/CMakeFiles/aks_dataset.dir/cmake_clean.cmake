file(REMOVE_RECURSE
  "CMakeFiles/aks_dataset.dir/benchmark_runner.cpp.o"
  "CMakeFiles/aks_dataset.dir/benchmark_runner.cpp.o.d"
  "CMakeFiles/aks_dataset.dir/extract.cpp.o"
  "CMakeFiles/aks_dataset.dir/extract.cpp.o.d"
  "CMakeFiles/aks_dataset.dir/lowering.cpp.o"
  "CMakeFiles/aks_dataset.dir/lowering.cpp.o.d"
  "CMakeFiles/aks_dataset.dir/networks.cpp.o"
  "CMakeFiles/aks_dataset.dir/networks.cpp.o.d"
  "CMakeFiles/aks_dataset.dir/perf_dataset.cpp.o"
  "CMakeFiles/aks_dataset.dir/perf_dataset.cpp.o.d"
  "libaks_dataset.a"
  "libaks_dataset.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aks_dataset.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
