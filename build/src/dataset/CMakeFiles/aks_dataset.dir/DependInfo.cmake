
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dataset/benchmark_runner.cpp" "src/dataset/CMakeFiles/aks_dataset.dir/benchmark_runner.cpp.o" "gcc" "src/dataset/CMakeFiles/aks_dataset.dir/benchmark_runner.cpp.o.d"
  "/root/repo/src/dataset/extract.cpp" "src/dataset/CMakeFiles/aks_dataset.dir/extract.cpp.o" "gcc" "src/dataset/CMakeFiles/aks_dataset.dir/extract.cpp.o.d"
  "/root/repo/src/dataset/lowering.cpp" "src/dataset/CMakeFiles/aks_dataset.dir/lowering.cpp.o" "gcc" "src/dataset/CMakeFiles/aks_dataset.dir/lowering.cpp.o.d"
  "/root/repo/src/dataset/networks.cpp" "src/dataset/CMakeFiles/aks_dataset.dir/networks.cpp.o" "gcc" "src/dataset/CMakeFiles/aks_dataset.dir/networks.cpp.o.d"
  "/root/repo/src/dataset/perf_dataset.cpp" "src/dataset/CMakeFiles/aks_dataset.dir/perf_dataset.cpp.o" "gcc" "src/dataset/CMakeFiles/aks_dataset.dir/perf_dataset.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/aks_common.dir/DependInfo.cmake"
  "/root/repo/build/src/gemm/CMakeFiles/aks_gemm.dir/DependInfo.cmake"
  "/root/repo/build/src/perfmodel/CMakeFiles/aks_perfmodel.dir/DependInfo.cmake"
  "/root/repo/build/src/syclrt/CMakeFiles/aks_syclrt.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
