
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ml/agglomerative.cpp" "src/ml/CMakeFiles/aks_ml.dir/agglomerative.cpp.o" "gcc" "src/ml/CMakeFiles/aks_ml.dir/agglomerative.cpp.o.d"
  "/root/repo/src/ml/cluster_metrics.cpp" "src/ml/CMakeFiles/aks_ml.dir/cluster_metrics.cpp.o" "gcc" "src/ml/CMakeFiles/aks_ml.dir/cluster_metrics.cpp.o.d"
  "/root/repo/src/ml/decision_tree.cpp" "src/ml/CMakeFiles/aks_ml.dir/decision_tree.cpp.o" "gcc" "src/ml/CMakeFiles/aks_ml.dir/decision_tree.cpp.o.d"
  "/root/repo/src/ml/gradient_boosting.cpp" "src/ml/CMakeFiles/aks_ml.dir/gradient_boosting.cpp.o" "gcc" "src/ml/CMakeFiles/aks_ml.dir/gradient_boosting.cpp.o.d"
  "/root/repo/src/ml/hdbscan.cpp" "src/ml/CMakeFiles/aks_ml.dir/hdbscan.cpp.o" "gcc" "src/ml/CMakeFiles/aks_ml.dir/hdbscan.cpp.o.d"
  "/root/repo/src/ml/kmeans.cpp" "src/ml/CMakeFiles/aks_ml.dir/kmeans.cpp.o" "gcc" "src/ml/CMakeFiles/aks_ml.dir/kmeans.cpp.o.d"
  "/root/repo/src/ml/knn.cpp" "src/ml/CMakeFiles/aks_ml.dir/knn.cpp.o" "gcc" "src/ml/CMakeFiles/aks_ml.dir/knn.cpp.o.d"
  "/root/repo/src/ml/linalg.cpp" "src/ml/CMakeFiles/aks_ml.dir/linalg.cpp.o" "gcc" "src/ml/CMakeFiles/aks_ml.dir/linalg.cpp.o.d"
  "/root/repo/src/ml/metrics.cpp" "src/ml/CMakeFiles/aks_ml.dir/metrics.cpp.o" "gcc" "src/ml/CMakeFiles/aks_ml.dir/metrics.cpp.o.d"
  "/root/repo/src/ml/model_selection.cpp" "src/ml/CMakeFiles/aks_ml.dir/model_selection.cpp.o" "gcc" "src/ml/CMakeFiles/aks_ml.dir/model_selection.cpp.o.d"
  "/root/repo/src/ml/pca.cpp" "src/ml/CMakeFiles/aks_ml.dir/pca.cpp.o" "gcc" "src/ml/CMakeFiles/aks_ml.dir/pca.cpp.o.d"
  "/root/repo/src/ml/random_forest.cpp" "src/ml/CMakeFiles/aks_ml.dir/random_forest.cpp.o" "gcc" "src/ml/CMakeFiles/aks_ml.dir/random_forest.cpp.o.d"
  "/root/repo/src/ml/scaler.cpp" "src/ml/CMakeFiles/aks_ml.dir/scaler.cpp.o" "gcc" "src/ml/CMakeFiles/aks_ml.dir/scaler.cpp.o.d"
  "/root/repo/src/ml/svm.cpp" "src/ml/CMakeFiles/aks_ml.dir/svm.cpp.o" "gcc" "src/ml/CMakeFiles/aks_ml.dir/svm.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/aks_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
