file(REMOVE_RECURSE
  "libaks_ml.a"
)
