file(REMOVE_RECURSE
  "CMakeFiles/aks_ml.dir/agglomerative.cpp.o"
  "CMakeFiles/aks_ml.dir/agglomerative.cpp.o.d"
  "CMakeFiles/aks_ml.dir/cluster_metrics.cpp.o"
  "CMakeFiles/aks_ml.dir/cluster_metrics.cpp.o.d"
  "CMakeFiles/aks_ml.dir/decision_tree.cpp.o"
  "CMakeFiles/aks_ml.dir/decision_tree.cpp.o.d"
  "CMakeFiles/aks_ml.dir/gradient_boosting.cpp.o"
  "CMakeFiles/aks_ml.dir/gradient_boosting.cpp.o.d"
  "CMakeFiles/aks_ml.dir/hdbscan.cpp.o"
  "CMakeFiles/aks_ml.dir/hdbscan.cpp.o.d"
  "CMakeFiles/aks_ml.dir/kmeans.cpp.o"
  "CMakeFiles/aks_ml.dir/kmeans.cpp.o.d"
  "CMakeFiles/aks_ml.dir/knn.cpp.o"
  "CMakeFiles/aks_ml.dir/knn.cpp.o.d"
  "CMakeFiles/aks_ml.dir/linalg.cpp.o"
  "CMakeFiles/aks_ml.dir/linalg.cpp.o.d"
  "CMakeFiles/aks_ml.dir/metrics.cpp.o"
  "CMakeFiles/aks_ml.dir/metrics.cpp.o.d"
  "CMakeFiles/aks_ml.dir/model_selection.cpp.o"
  "CMakeFiles/aks_ml.dir/model_selection.cpp.o.d"
  "CMakeFiles/aks_ml.dir/pca.cpp.o"
  "CMakeFiles/aks_ml.dir/pca.cpp.o.d"
  "CMakeFiles/aks_ml.dir/random_forest.cpp.o"
  "CMakeFiles/aks_ml.dir/random_forest.cpp.o.d"
  "CMakeFiles/aks_ml.dir/scaler.cpp.o"
  "CMakeFiles/aks_ml.dir/scaler.cpp.o.d"
  "CMakeFiles/aks_ml.dir/svm.cpp.o"
  "CMakeFiles/aks_ml.dir/svm.cpp.o.d"
  "libaks_ml.a"
  "libaks_ml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aks_ml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
