# Empty dependencies file for aks_ml.
# This may be replaced when dependencies are built.
