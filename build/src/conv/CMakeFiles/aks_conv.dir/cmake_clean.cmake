file(REMOVE_RECURSE
  "CMakeFiles/aks_conv.dir/direct.cpp.o"
  "CMakeFiles/aks_conv.dir/direct.cpp.o.d"
  "CMakeFiles/aks_conv.dir/im2col.cpp.o"
  "CMakeFiles/aks_conv.dir/im2col.cpp.o.d"
  "CMakeFiles/aks_conv.dir/winograd.cpp.o"
  "CMakeFiles/aks_conv.dir/winograd.cpp.o.d"
  "CMakeFiles/aks_conv.dir/winograd4.cpp.o"
  "CMakeFiles/aks_conv.dir/winograd4.cpp.o.d"
  "libaks_conv.a"
  "libaks_conv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aks_conv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
