file(REMOVE_RECURSE
  "libaks_conv.a"
)
