
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/conv/direct.cpp" "src/conv/CMakeFiles/aks_conv.dir/direct.cpp.o" "gcc" "src/conv/CMakeFiles/aks_conv.dir/direct.cpp.o.d"
  "/root/repo/src/conv/im2col.cpp" "src/conv/CMakeFiles/aks_conv.dir/im2col.cpp.o" "gcc" "src/conv/CMakeFiles/aks_conv.dir/im2col.cpp.o.d"
  "/root/repo/src/conv/winograd.cpp" "src/conv/CMakeFiles/aks_conv.dir/winograd.cpp.o" "gcc" "src/conv/CMakeFiles/aks_conv.dir/winograd.cpp.o.d"
  "/root/repo/src/conv/winograd4.cpp" "src/conv/CMakeFiles/aks_conv.dir/winograd4.cpp.o" "gcc" "src/conv/CMakeFiles/aks_conv.dir/winograd4.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/aks_common.dir/DependInfo.cmake"
  "/root/repo/build/src/gemm/CMakeFiles/aks_gemm.dir/DependInfo.cmake"
  "/root/repo/build/src/syclrt/CMakeFiles/aks_syclrt.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
