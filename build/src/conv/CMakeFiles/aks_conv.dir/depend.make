# Empty dependencies file for aks_conv.
# This may be replaced when dependencies are built.
