file(REMOVE_RECURSE
  "libaks_perfmodel.a"
)
