# Empty dependencies file for aks_perfmodel.
# This may be replaced when dependencies are built.
