file(REMOVE_RECURSE
  "CMakeFiles/aks_perfmodel.dir/cost_model.cpp.o"
  "CMakeFiles/aks_perfmodel.dir/cost_model.cpp.o.d"
  "CMakeFiles/aks_perfmodel.dir/device_spec.cpp.o"
  "CMakeFiles/aks_perfmodel.dir/device_spec.cpp.o.d"
  "libaks_perfmodel.a"
  "libaks_perfmodel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aks_perfmodel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
