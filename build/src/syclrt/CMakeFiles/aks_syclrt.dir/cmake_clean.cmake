file(REMOVE_RECURSE
  "CMakeFiles/aks_syclrt.dir/queue.cpp.o"
  "CMakeFiles/aks_syclrt.dir/queue.cpp.o.d"
  "libaks_syclrt.a"
  "libaks_syclrt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aks_syclrt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
