file(REMOVE_RECURSE
  "libaks_syclrt.a"
)
