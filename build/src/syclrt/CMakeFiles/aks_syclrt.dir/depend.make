# Empty dependencies file for aks_syclrt.
# This may be replaced when dependencies are built.
