# Empty dependencies file for ablation_feature_scaling.
# This may be replaced when dependencies are built.
