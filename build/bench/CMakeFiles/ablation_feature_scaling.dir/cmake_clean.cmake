file(REMOVE_RECURSE
  "CMakeFiles/ablation_feature_scaling.dir/ablation_feature_scaling.cpp.o"
  "CMakeFiles/ablation_feature_scaling.dir/ablation_feature_scaling.cpp.o.d"
  "ablation_feature_scaling"
  "ablation_feature_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_feature_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
