file(REMOVE_RECURSE
  "CMakeFiles/gemm_kernels.dir/gemm_kernels.cpp.o"
  "CMakeFiles/gemm_kernels.dir/gemm_kernels.cpp.o.d"
  "gemm_kernels"
  "gemm_kernels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gemm_kernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
