file(REMOVE_RECURSE
  "CMakeFiles/ablation_cross_device.dir/ablation_cross_device.cpp.o"
  "CMakeFiles/ablation_cross_device.dir/ablation_cross_device.cpp.o.d"
  "ablation_cross_device"
  "ablation_cross_device.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_cross_device.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
