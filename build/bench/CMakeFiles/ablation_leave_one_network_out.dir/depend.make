# Empty dependencies file for ablation_leave_one_network_out.
# This may be replaced when dependencies are built.
