file(REMOVE_RECURSE
  "CMakeFiles/ablation_leave_one_network_out.dir/ablation_leave_one_network_out.cpp.o"
  "CMakeFiles/ablation_leave_one_network_out.dir/ablation_leave_one_network_out.cpp.o.d"
  "ablation_leave_one_network_out"
  "ablation_leave_one_network_out.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_leave_one_network_out.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
