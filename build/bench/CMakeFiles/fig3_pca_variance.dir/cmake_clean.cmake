file(REMOVE_RECURSE
  "CMakeFiles/fig3_pca_variance.dir/fig3_pca_variance.cpp.o"
  "CMakeFiles/fig3_pca_variance.dir/fig3_pca_variance.cpp.o.d"
  "fig3_pca_variance"
  "fig3_pca_variance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_pca_variance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
