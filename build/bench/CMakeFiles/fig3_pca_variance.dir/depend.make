# Empty dependencies file for fig3_pca_variance.
# This may be replaced when dependencies are built.
