# Empty compiler generated dependencies file for model_vs_host_rank.
# This may be replaced when dependencies are built.
