file(REMOVE_RECURSE
  "CMakeFiles/model_vs_host_rank.dir/model_vs_host_rank.cpp.o"
  "CMakeFiles/model_vs_host_rank.dir/model_vs_host_rank.cpp.o.d"
  "model_vs_host_rank"
  "model_vs_host_rank.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/model_vs_host_rank.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
