# Empty dependencies file for fig4_pruning_methods.
# This may be replaced when dependencies are built.
