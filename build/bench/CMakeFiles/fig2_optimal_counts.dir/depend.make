# Empty dependencies file for fig2_optimal_counts.
# This may be replaced when dependencies are built.
