file(REMOVE_RECURSE
  "CMakeFiles/fig2_optimal_counts.dir/fig2_optimal_counts.cpp.o"
  "CMakeFiles/fig2_optimal_counts.dir/fig2_optimal_counts.cpp.o.d"
  "fig2_optimal_counts"
  "fig2_optimal_counts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_optimal_counts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
