file(REMOVE_RECURSE
  "CMakeFiles/ablation_split_variance.dir/ablation_split_variance.cpp.o"
  "CMakeFiles/ablation_split_variance.dir/ablation_split_variance.cpp.o.d"
  "ablation_split_variance"
  "ablation_split_variance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_split_variance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
