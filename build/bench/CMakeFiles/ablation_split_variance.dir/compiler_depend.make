# Empty compiler generated dependencies file for ablation_split_variance.
# This may be replaced when dependencies are built.
