file(REMOVE_RECURSE
  "CMakeFiles/network_end_to_end.dir/network_end_to_end.cpp.o"
  "CMakeFiles/network_end_to_end.dir/network_end_to_end.cpp.o.d"
  "network_end_to_end"
  "network_end_to_end.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/network_end_to_end.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
