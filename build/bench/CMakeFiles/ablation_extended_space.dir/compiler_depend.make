# Empty compiler generated dependencies file for ablation_extended_space.
# This may be replaced when dependencies are built.
