file(REMOVE_RECURSE
  "CMakeFiles/ablation_extended_space.dir/ablation_extended_space.cpp.o"
  "CMakeFiles/ablation_extended_space.dir/ablation_extended_space.cpp.o.d"
  "ablation_extended_space"
  "ablation_extended_space.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_extended_space.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
