file(REMOVE_RECURSE
  "CMakeFiles/ablation_pca_dims.dir/ablation_pca_dims.cpp.o"
  "CMakeFiles/ablation_pca_dims.dir/ablation_pca_dims.cpp.o.d"
  "ablation_pca_dims"
  "ablation_pca_dims.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_pca_dims.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
