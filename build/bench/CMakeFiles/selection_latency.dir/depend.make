# Empty dependencies file for selection_latency.
# This may be replaced when dependencies are built.
