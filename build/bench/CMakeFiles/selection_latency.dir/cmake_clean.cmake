file(REMOVE_RECURSE
  "CMakeFiles/selection_latency.dir/selection_latency.cpp.o"
  "CMakeFiles/selection_latency.dir/selection_latency.cpp.o.d"
  "selection_latency"
  "selection_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/selection_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
