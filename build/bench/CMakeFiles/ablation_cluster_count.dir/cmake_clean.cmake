file(REMOVE_RECURSE
  "CMakeFiles/ablation_cluster_count.dir/ablation_cluster_count.cpp.o"
  "CMakeFiles/ablation_cluster_count.dir/ablation_cluster_count.cpp.o.d"
  "ablation_cluster_count"
  "ablation_cluster_count.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_cluster_count.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
