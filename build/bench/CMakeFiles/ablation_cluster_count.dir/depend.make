# Empty dependencies file for ablation_cluster_count.
# This may be replaced when dependencies are built.
