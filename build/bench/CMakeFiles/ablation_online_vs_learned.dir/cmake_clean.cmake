file(REMOVE_RECURSE
  "CMakeFiles/ablation_online_vs_learned.dir/ablation_online_vs_learned.cpp.o"
  "CMakeFiles/ablation_online_vs_learned.dir/ablation_online_vs_learned.cpp.o.d"
  "ablation_online_vs_learned"
  "ablation_online_vs_learned.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_online_vs_learned.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
