# Empty compiler generated dependencies file for ablation_online_vs_learned.
# This may be replaced when dependencies are built.
