
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/ablation_noise.cpp" "bench/CMakeFiles/ablation_noise.dir/ablation_noise.cpp.o" "gcc" "bench/CMakeFiles/ablation_noise.dir/ablation_noise.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/aks_core.dir/DependInfo.cmake"
  "/root/repo/build/src/dataset/CMakeFiles/aks_dataset.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/aks_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/perfmodel/CMakeFiles/aks_perfmodel.dir/DependInfo.cmake"
  "/root/repo/build/src/gemm/CMakeFiles/aks_gemm.dir/DependInfo.cmake"
  "/root/repo/build/src/syclrt/CMakeFiles/aks_syclrt.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/aks_common.dir/DependInfo.cmake"
  "/root/repo/build/src/conv/CMakeFiles/aks_conv.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
