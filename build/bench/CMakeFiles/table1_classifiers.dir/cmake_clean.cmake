file(REMOVE_RECURSE
  "CMakeFiles/table1_classifiers.dir/table1_classifiers.cpp.o"
  "CMakeFiles/table1_classifiers.dir/table1_classifiers.cpp.o.d"
  "table1_classifiers"
  "table1_classifiers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_classifiers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
